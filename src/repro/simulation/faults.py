"""Unified fault-plan engine: crashes, recoveries, partitions, link faults and
message corruption.

The paper's failure model is crash-stop, and the seed codebase hard-wired it in
four disconnected places (:class:`~repro.simulation.crash.CrashSchedule`, the
delay models, the fair-lossy channel models and the scenario layer).  This module
replaces that with one composable surface:

* a :class:`FaultEvent` is one timed fault — :class:`Crash`, :class:`Recover`,
  :class:`PartitionStart` / :class:`PartitionHeal`, :class:`LinkFault` /
  :class:`LinkHeal`, :class:`CorruptLink`, :class:`SlowProcess`;
* a :class:`FaultPlan` groups events into a declarative, validated, replayable
  plan, with builders for the standard shapes (pure crash-stop schedules, rolling
  restarts, split brain, flaky links, corrupting links, random plans from a
  :class:`~repro.util.rng.RandomSource`);
* a :class:`FaultInjector` schedules the plan's events on a system's virtual
  clock and applies them (it is the only object that mutates the system).
  Events may also be injected while the run is in progress —
  :meth:`FaultInjector.inject` revalidates the whole plan, which is the hook
  the *adaptive adversaries* of :mod:`repro.simulation.adversary` drive;
* a :class:`LinkState` matrix holds the *current* topology faults; the
  :class:`~repro.simulation.network.Network` consults it on every send, before
  the delay model draws a delay.

Beyond dropping and delaying, a link can **corrupt**: a :class:`CorruptLink`
fault garbles the command payloads of messages crossing the link (stale
checksums preserved — see :mod:`repro.simulation.corruption`) instead of losing
them.  Detection is end-to-end: the consensus/service boundary verifies the
checksums and rejects tampered deliveries, so corruption degrades into message
loss rather than divergent replica state.

Determinism and the hot path
----------------------------
A plan containing only :class:`Crash` events is executed exactly like the
equivalent :class:`CrashSchedule` used to be: no :class:`LinkState` is installed
(the network's per-message cost is a single ``is None`` check), the delay model's
RNG stream is untouched, and crash events occupy the same scheduler positions —
seeded runs are byte-identical to the pre-engine behaviour.  Topology faults
draw their loss decisions from a dedicated, labelled RNG stream so that
activating them never perturbs delay draws.

Semantics
---------
* Reachability is decided at **send** time: a message already in flight when a
  partition starts is still delivered (the send completed), and a message sent
  into a partition is lost even if the partition heals before its delivery time.
* A recovered process restarts its algorithm **from its initial state** by
  default (crash recovery without stable storage): the
  :class:`~repro.simulation.system.System` rebuilds the algorithm object
  through its process factory.  When the system runs with stable storage
  (``System(storage=...)`` / ``ShardedService(stable_storage=True)``), the new
  incarnation is rehydrated from its durable store instead.  Timers armed by a
  previous incarnation never fire after recovery.  Without storage, restarts
  carry the **quorum-amnesia hazard** — a restarted acceptor forgets its
  promises, so enough restarts can silently shrink a promise quorum and break
  agreement; :meth:`FaultPlan.amnesia_hazards` flags plans that can reach that
  state, and ``validate(..., require_quorum_memory=True)`` rejects them.
* ``correct`` means *eventually up*: a process is correct under a plan when its
  final state — after every crash and recovery the plan contains — is up.  For
  pure crash plans this coincides with the crash-stop notion.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.simulation.corruption import corrupt_message
from repro.simulation.crash import CrashSchedule
from repro.util.rng import RandomSource
from repro.util.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    validate_process_count,
)


# ---------------------------------------------------------------------------- events
@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """Base class of every timed fault event."""

    time: float

    def __post_init__(self) -> None:
        require_non_negative(self.time, "fault event time")

    def describe(self) -> str:
        return f"{type(self).__name__}@{self.time:g}"


@dataclasses.dataclass(frozen=True)
class Crash(FaultEvent):
    """Process *pid* crashes (stops taking steps) at :attr:`time`."""

    pid: int

    def describe(self) -> str:
        return f"crash(p{self.pid})@{self.time:g}"


@dataclasses.dataclass(frozen=True)
class Recover(FaultEvent):
    """Process *pid* restarts from its initial state at :attr:`time`."""

    pid: int

    def describe(self) -> str:
        return f"recover(p{self.pid})@{self.time:g}"


@dataclasses.dataclass(frozen=True)
class PartitionStart(FaultEvent):
    """Split the system into disjoint groups that cannot exchange messages.

    ``groups`` lists the explicit sides of the partition; processes not named in
    any group implicitly form one extra side together.  A new
    :class:`PartitionStart` replaces any partition currently in force.
    """

    groups: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        super().__post_init__()
        seen: Set[int] = set()
        for group in self.groups:
            for pid in group:
                if pid in seen:
                    raise ValueError(f"process {pid} appears in two partition groups")
                seen.add(pid)

    def describe(self) -> str:
        sides = " | ".join("{" + ",".join(map(str, g)) + "}" for g in self.groups)
        return f"partition[{sides}]@{self.time:g}"


@dataclasses.dataclass(frozen=True)
class PartitionHeal(FaultEvent):
    """Remove the partition currently in force (no-op when there is none)."""

    def describe(self) -> str:
        return f"heal@{self.time:g}"


@dataclasses.dataclass(frozen=True)
class LinkFault(FaultEvent):
    """Degrade the directed link ``sender -> dest`` from :attr:`time` on.

    Attributes
    ----------
    block:
        Drop every message on the link (a one-way cut) before the delay model
        even draws a delay.
    loss_probability:
        Drop each message independently with this probability, in ``[0, 1]``
        (fair-lossy link; 1.0 loses everything but, unlike ``block``, still
        consumes one loss draw per message).
    delay_factor / delay_add:
        Transform the delay drawn by the delay model: ``delay * factor + add``.
    until:
        Optional absolute time at which the fault heals by itself.
    """

    sender: int
    dest: int
    block: bool = False
    loss_probability: float = 0.0
    delay_factor: float = 1.0
    delay_add: float = 0.0
    until: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        require_in_range(self.loss_probability, "loss_probability", 0.0, 1.0)
        require_positive(self.delay_factor, "delay_factor")
        require_non_negative(self.delay_add, "delay_add")
        if self.until is not None and self.until <= self.time:
            raise ValueError(
                f"link fault until={self.until} must be after time={self.time}"
            )

    def describe(self) -> str:
        what = "cut" if self.block else (
            f"loss={self.loss_probability:g},x{self.delay_factor:g}+{self.delay_add:g}"
        )
        window = f"..{self.until:g}" if self.until is not None else ".."
        return f"link({self.sender}->{self.dest} {what})@{self.time:g}{window}"


@dataclasses.dataclass(frozen=True)
class LinkHeal(FaultEvent):
    """Restore the directed link ``sender -> dest`` to its nominal behaviour."""

    sender: int
    dest: int

    def describe(self) -> str:
        return f"linkheal({self.sender}->{self.dest})@{self.time:g}"


@dataclasses.dataclass(frozen=True)
class CorruptLink(FaultEvent):
    """Garble command payloads on the directed link ``sender -> dest``.

    From :attr:`time` on, each message crossing the link that carries an
    integrity-protected payload is tampered with (independently, with
    :attr:`probability`): the payload is garbled while its stale checksum is
    preserved, so the receiving side's digest check rejects the delivery (see
    :mod:`repro.simulation.corruption`).  Messages without such a payload —
    the Omega layer's control traffic — pass through unchanged.  Unlike a
    :class:`LinkFault` the link still *delivers* on time; corruption attacks
    integrity, not availability.

    ``until`` heals the corruption by itself; a :class:`LinkHeal` on the same
    directed link removes it too (healing restores the link to nominal
    behaviour in every respect).
    """

    sender: int
    dest: int
    probability: float = 1.0
    until: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        require_in_range(self.probability, "probability", 0.0, 1.0)
        if self.probability == 0.0:
            raise ValueError("a CorruptLink with probability=0 corrupts nothing")
        if self.until is not None and self.until <= self.time:
            raise ValueError(
                f"corruption until={self.until} must be after time={self.time}"
            )

    def describe(self) -> str:
        window = f"..{self.until:g}" if self.until is not None else ".."
        return (
            f"corrupt({self.sender}->{self.dest} "
            f"p={self.probability:g})@{self.time:g}{window}"
        )


@dataclasses.dataclass(frozen=True)
class SlowProcess(FaultEvent):
    """Multiply the delay of every message to/from *pid* by *factor*.

    Models a process on a degraded host (GC pauses, an overloaded NIC) without
    taking it down; ``until`` removes the slowdown, ``factor=1`` at any later
    :class:`SlowProcess` event does the same explicitly.
    """

    pid: int
    factor: float = 1.0
    until: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        require_positive(self.factor, "factor")
        if self.until is not None and self.until <= self.time:
            raise ValueError(f"slowdown until={self.until} must be after time={self.time}")

    def describe(self) -> str:
        return f"slow(p{self.pid} x{self.factor:g})@{self.time:g}"


#: Wire names of the event kinds, used by the ``to_dict``/``from_dict``
#: round-trip (the corpus format of :mod:`repro.fuzz`).  Append-only: renaming
#: a kind would orphan every serialized plan that names it.
EVENT_KINDS: Dict[str, type] = {
    "crash": Crash,
    "recover": Recover,
    "partition_start": PartitionStart,
    "partition_heal": PartitionHeal,
    "link_fault": LinkFault,
    "link_heal": LinkHeal,
    "corrupt_link": CorruptLink,
    "slow_process": SlowProcess,
}

_KIND_OF_EVENT = {cls: kind for kind, cls in EVENT_KINDS.items()}


def event_to_dict(event: FaultEvent) -> Dict[str, object]:
    """Serialize one :class:`FaultEvent` into a JSON-compatible dict."""
    kind = _KIND_OF_EVENT.get(type(event))
    if kind is None:
        raise TypeError(f"cannot serialize unknown fault event {event!r}")
    payload: Dict[str, object] = {"kind": kind}
    for field in dataclasses.fields(event):
        value = getattr(event, field.name)
        if field.name == "groups":
            value = [list(group) for group in value]
        payload[field.name] = value
    return payload


def event_from_dict(data: Mapping[str, object]) -> FaultEvent:
    """Rebuild a :class:`FaultEvent` from :func:`event_to_dict` output.

    Validation happens on load: an unknown ``kind``, an unknown field, a
    missing field or an out-of-range value (the dataclasses re-run their
    ``__post_init__`` checks) all raise ``ValueError`` — a corrupted or
    hand-edited corpus entry fails loudly instead of mutating silently.
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"fault event must be a mapping, got {data!r}")
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown fault event kind {kind!r} (expected one of {sorted(EVENT_KINDS)})"
        )
    field_names = {field.name for field in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - field_names)
    if unknown:
        raise ValueError(f"unknown field(s) {unknown} for fault event kind {kind!r}")
    if "groups" in payload:
        groups = payload["groups"]
        if not isinstance(groups, (list, tuple)):
            raise ValueError(f"partition groups must be a list, got {groups!r}")
        payload["groups"] = tuple(
            tuple(int(pid) for pid in group) for group in groups
        )
    try:
        return cls(**payload)
    except TypeError as exc:  # missing required fields
        raise ValueError(f"invalid {kind!r} event {dict(data)!r}: {exc}") from exc


#: Event kinds that change topology (and therefore require a LinkState matrix).
_TOPOLOGY_EVENTS = (
    PartitionStart,
    PartitionHeal,
    LinkFault,
    LinkHeal,
    CorruptLink,
    SlowProcess,
)

#: Default receiving-round fast-forward threshold enabled for plans that can
#: lose messages or reset a process (see OmegaConfig.round_resync_gap).
DEFAULT_ROUND_RESYNC_GAP = 8


# ---------------------------------------------------------------------------- plan
class FaultPlan:
    """A declarative, ordered collection of :class:`FaultEvent`\\ s.

    Events are kept in insertion order; events sharing a timestamp are applied in
    that order (the scheduler breaks timestamp ties by scheduling order), which is
    what makes a :meth:`crash_stop` plan execute identically to the legacy
    :class:`~repro.simulation.crash.CrashSchedule` path.
    """

    def __init__(self, events: Optional[Iterable[FaultEvent]] = None) -> None:
        self.events: List[FaultEvent] = []
        for event in events or ():
            self.add(event)

    # ------------------------------------------------------------------ building --
    def add(self, event: FaultEvent) -> "FaultPlan":
        """Append *event*; returns the plan for chaining."""
        if not isinstance(event, FaultEvent):
            raise TypeError(f"expected a FaultEvent, got {event!r}")
        self.events.append(event)
        return self

    def extend(self, events: Iterable[FaultEvent]) -> "FaultPlan":
        """Append every event of *events*; returns the plan for chaining."""
        for event in events:
            self.add(event)
        return self

    @classmethod
    def none(cls) -> "FaultPlan":
        """A fault-free plan (the no-op plan)."""
        return cls()

    @classmethod
    def crashes(cls, crash_times: Mapping[int, float]) -> "FaultPlan":
        """Pure crash-stop plan from a ``pid -> time`` mapping (insertion order)."""
        return cls(Crash(time=float(t), pid=int(pid)) for pid, t in crash_times.items())

    @classmethod
    def crash_stop(cls, schedule: CrashSchedule) -> "FaultPlan":
        """Adapter: the plan equivalent to a legacy :class:`CrashSchedule`.

        Event order follows ``schedule.items()`` so that seeded executions are
        byte-identical to the pre-engine crash-schedule path.
        """
        return cls(Crash(time=t, pid=pid) for pid, t in schedule.items())

    @classmethod
    def rolling_restarts(
        cls,
        pids: Iterable[int],
        start: float,
        downtime: float,
        spacing: Optional[float] = None,
    ) -> "FaultPlan":
        """Crash and recover *pids* one after another (a rolling restart).

        Each process is down for *downtime*; the next one goes down *spacing*
        after the previous (default: right when the previous comes back, so at
        most one process is down at a time).
        """
        require_non_negative(start, "start")
        require_positive(downtime, "downtime")
        if spacing is None:
            spacing = downtime
        require_positive(spacing, "spacing")
        plan = cls()
        for index, pid in enumerate(pids):
            down = start + index * spacing
            plan.add(Crash(time=down, pid=pid))
            plan.add(Recover(time=down + downtime, pid=pid))
        return plan

    @classmethod
    def split_brain(
        cls,
        groups: Sequence[Sequence[int]],
        at: float,
        heal_at: Optional[float] = None,
    ) -> "FaultPlan":
        """Partition the system into *groups* at *at*, optionally healing later."""
        plan = cls()
        plan.add(
            PartitionStart(
                time=at, groups=tuple(tuple(int(p) for p in g) for g in groups)
            )
        )
        if heal_at is not None:
            if heal_at <= at:
                raise ValueError(f"heal_at={heal_at} must be after at={at}")
            plan.add(PartitionHeal(time=heal_at))
        return plan

    @classmethod
    def flaky_links(
        cls,
        links: Iterable[Tuple[int, int]],
        at: float,
        until: Optional[float] = None,
        loss_probability: float = 0.2,
        delay_factor: float = 1.0,
        delay_add: float = 0.0,
    ) -> "FaultPlan":
        """Make every directed link in *links* lossy/slow from *at* (to *until*)."""
        return cls(
            LinkFault(
                time=at,
                sender=int(s),
                dest=int(d),
                loss_probability=loss_probability,
                delay_factor=delay_factor,
                delay_add=delay_add,
                until=until,
            )
            for s, d in links
        )

    @classmethod
    def corrupt_links(
        cls,
        links: Iterable[Tuple[int, int]],
        at: float,
        until: Optional[float] = None,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Make every directed link in *links* corrupt payloads from *at* (to *until*)."""
        return cls(
            CorruptLink(
                time=at,
                sender=int(s),
                dest=int(d),
                probability=probability,
                until=until,
            )
            for s, d in links
        )

    @classmethod
    def random(
        cls,
        n: int,
        t: int,
        rng: RandomSource,
        horizon: float,
        crash_count: Optional[int] = None,
        recover_probability: float = 0.5,
        partition_probability: float = 0.0,
        flaky_link_count: int = 0,
        loss_probability: float = 0.2,
        corrupt_link_count: int = 0,
        corrupt_probability: float = 0.8,
        protect: Iterable[int] = (),
    ) -> "FaultPlan":
        """Draw a random plan whose faults all end by *horizon*.

        Crashes hit up to *crash_count* (default ``t``) unprotected processes at
        uniform times in the first half of the horizon; each crashed process
        recovers before the horizon with probability *recover_probability*.  With
        *partition_probability*, a random two-sided partition opens and heals
        inside the horizon, *flaky_link_count* random directed links become
        lossy for a sub-window, and *corrupt_link_count* random directed links
        corrupt payloads for a sub-window.  Because every partition heals and
        every link fault carries an ``until``, the plan is quiet after
        *horizon* — the shape the stabilisation-property tests rely on.  The
        defaults draw nothing new, so plans generated by earlier seeds are
        reproduced byte-identically.

        ``protect`` means *never targeted*: protected processes are neither
        crashed, nor used as an endpoint of a drawn lossy or corrupting link
        (degrading a protected process's links attacks it just as a crash
        would), nor named by a drawn partition side — they sit on the implicit
        side together with at least one unprotected peer, so a protected star
        centre is never isolated alone.  With no protected pids every draw is
        byte-identical to plans generated before protection covered links and
        partitions.
        """
        validate_process_count(n, t)
        require_positive(horizon, "horizon")
        count = t if crash_count is None else crash_count
        if count > t:
            raise ValueError(f"cannot crash {count} > t={t} processes")
        protected = set(protect)
        candidates = [pid for pid in range(n) if pid not in protected]
        if count > len(candidates):
            raise ValueError(
                f"cannot crash {count} processes: only {len(candidates)} candidates"
            )
        plan = cls()
        victims = rng.sample(candidates, count) if count else []
        for pid in victims:
            down = rng.uniform(0.0, horizon / 2)
            plan.add(Crash(time=down, pid=pid))
            if rng.random() < recover_probability:
                plan.add(Recover(time=rng.uniform(down + horizon / 10, horizon), pid=pid))
        if len(candidates) >= 2 and rng.random() < partition_probability:
            # The drawn (isolated) side never names a protected process, and at
            # least one unprotected peer stays on the implicit side with the
            # protected ones — so a protected star centre is never the lone
            # process on its side.  With no protected pids this draws exactly
            # as it always did.
            side_size = rng.randint(1, len(candidates) - 1)
            side = tuple(sorted(rng.sample(candidates, side_size)))
            at = rng.uniform(0.0, horizon / 2)
            plan.extend(
                FaultPlan.split_brain(
                    [side], at=at, heal_at=rng.uniform(at + horizon / 10, horizon)
                ).events
            )
        if (flaky_link_count or corrupt_link_count) and len(candidates) < 2:
            raise ValueError(
                f"cannot draw link faults: only {len(candidates)} unprotected "
                "processes (need 2 for a directed link)"
            )
        for _ in range(flaky_link_count):
            sender, dest = rng.sample(candidates, 2)
            at = rng.uniform(0.0, horizon / 2)
            plan.add(
                LinkFault(
                    time=at,
                    sender=sender,
                    dest=dest,
                    loss_probability=loss_probability,
                    until=rng.uniform(at + horizon / 10, horizon),
                )
            )
        for _ in range(corrupt_link_count):
            sender, dest = rng.sample(candidates, 2)
            at = rng.uniform(0.0, horizon / 2)
            plan.add(
                CorruptLink(
                    time=at,
                    sender=sender,
                    dest=dest,
                    probability=corrupt_probability,
                    until=rng.uniform(at + horizon / 10, horizon),
                )
            )
        return plan

    # ------------------------------------------------------------------ serialization --
    def to_dict(self) -> Dict[str, object]:
        """Serialize the plan (event order preserved) into a JSON-compatible dict.

        The inverse of :meth:`from_dict`; the round-trip is exact, so a
        deserialized plan replays byte-identically — the property the fuzz
        corpus (:mod:`repro.fuzz.corpus`) and saved demo plans rely on.
        """
        return {
            "version": 1,
            "events": [event_to_dict(event) for event in self.events],
        }

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, object],
        n: Optional[int] = None,
        t: Optional[int] = None,
    ) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output, validating on load.

        Malformed input — wrong version, unknown event kinds or fields,
        out-of-range values — raises ``ValueError``.  Passing ``n`` and ``t``
        additionally runs :meth:`validate`, so a plan loaded for a concrete
        system is checked against its ≤ t budget before anything executes it.
        """
        if not isinstance(data, Mapping):
            raise ValueError(f"fault plan must be a mapping, got {data!r}")
        version = data.get("version", 1)
        if version != 1:
            raise ValueError(f"unsupported fault-plan version {version!r}")
        events = data.get("events")
        if not isinstance(events, (list, tuple)):
            raise ValueError(f"fault plan 'events' must be a list, got {events!r}")
        plan = cls(event_from_dict(event) for event in events)
        if n is not None:
            plan.validate(n, t if t is not None else 0)
        return plan

    # ------------------------------------------------------------------ queries --
    def __len__(self) -> int:
        return len(self.events)

    def is_crash_stop_only(self) -> bool:
        """True when the plan contains nothing but :class:`Crash` events."""
        return all(type(event) is Crash for event in self.events)

    def has_topology_events(self) -> bool:
        """True when the plan needs a :class:`LinkState` matrix."""
        return any(isinstance(event, _TOPOLOGY_EVENTS) for event in self.events)

    def has_recoveries(self) -> bool:
        """True when the plan contains at least one :class:`Recover` event."""
        return any(type(event) is Recover for event in self.events)

    def needs_round_resync(self) -> bool:
        """True when the plan can stall the paper's round-based algorithms.

        Partitions and lossy/blocked links lose ALIVE messages outright, and a
        recovery resets a peer's sending round to 0; either can leave a
        receiving round permanently short of its ``alpha`` exact-round
        receptions.  Systems running such plans should enable
        ``OmegaConfig.round_resync_gap`` (the sharded service does this
        automatically); pure crash-stop plans return False and keep the paper's
        exact semantics.  So do corruption-only plans: a :class:`CorruptLink`
        garbles command payloads but never touches (let alone drops) the Omega
        layer's ALIVE traffic, so rounds keep closing normally.
        """
        if self.has_recoveries():
            return True
        return any(
            isinstance(event, _TOPOLOGY_EVENTS) and type(event) is not CorruptLink
            for event in self.events
        )

    def _chronological(self) -> List[FaultEvent]:
        """Events sorted by time, ties broken by plan order (stable sort)."""
        return sorted(self.events, key=lambda event: event.time)

    def final_down_ids(self) -> List[int]:
        """Processes whose final state under the plan is crashed (sorted)."""
        down: Set[int] = set()
        for event in self._chronological():
            if type(event) is Crash:
                down.add(event.pid)
            elif type(event) is Recover:
                down.discard(event.pid)
        return sorted(down)

    def correct_ids(self, n: int) -> List[int]:
        """Processes that are *eventually up* under the plan, out of ``range(n)``."""
        down = set(self.final_down_ids())
        return [pid for pid in range(n) if pid not in down]

    def to_crash_schedule(self) -> CrashSchedule:
        """Legacy view: each eventually-down process at its *final* crash time.

        For a pure crash-stop plan this is the exact inverse of
        :meth:`crash_stop` (same pids, same times, same order).
        """
        final_crash: Dict[int, float] = {}
        for event in self._chronological():
            if type(event) is Crash:
                final_crash[event.pid] = event.time
            elif type(event) is Recover:
                final_crash.pop(event.pid, None)
        if self.is_crash_stop_only():
            # Preserve plan (insertion) order for byte-identical legacy behaviour.
            return CrashSchedule(
                {event.pid: event.time for event in self.events if event.pid in final_crash}
            )
        return CrashSchedule(final_crash)

    def final_partition(self) -> Optional[Tuple[Tuple[int, ...], ...]]:
        """The partition still in force at the end of the plan, or ``None``."""
        current: Optional[Tuple[Tuple[int, ...], ...]] = None
        for event in self._chronological():
            if type(event) is PartitionStart:
                current = event.groups
            elif type(event) is PartitionHeal:
                current = None
        return current

    def final_blocked_links(self) -> List[Tuple[int, int]]:
        """Directed links still blocked at the end of the plan (sorted)."""
        blocked: Set[Tuple[int, int]] = set()
        for event in self._chronological():
            if type(event) is LinkFault:
                key = (event.sender, event.dest)
                if event.block and event.until is None:
                    blocked.add(key)
                else:
                    blocked.discard(key)
            elif type(event) is LinkHeal:
                blocked.discard((event.sender, event.dest))
        return sorted(blocked)

    def final_corrupt_links(self) -> List[Tuple[int, int]]:
        """Directed links still corrupting *every* payload at the end (sorted).

        Only fully corrupting (``probability == 1``) unhealed links count: a
        probabilistic corrupter is fair-lossy for the data plane — intact
        copies eventually get through — and therefore not permanent damage.
        """
        corrupting: Set[Tuple[int, int]] = set()
        for event in self._chronological():
            if type(event) is CorruptLink:
                key = (event.sender, event.dest)
                if event.probability >= 1.0 and event.until is None:
                    corrupting.add(key)
                else:
                    corrupting.discard(key)
            elif type(event) is LinkHeal:
                corrupting.discard((event.sender, event.dest))
        return sorted(corrupting)

    def restarted_ids(self) -> List[int]:
        """Processes the plan restarts at least once (sorted).

        Without stable storage these are the *amnesic* acceptors: each restart
        wipes the promises and accepted values of its process.
        """
        return sorted({event.pid for event in self.events if type(event) is Recover})

    def amnesia_hazards(self, n: int, t: int) -> List[str]:
        """Explain how the plan can break agreement when storage is off.

        Consensus safety rests on quorum intersection: any two quorums of size
        ``n - t`` share at least ``n - 2t`` acceptors, and at least one of them
        must *remember* the accepted value of an earlier ballot.  A restart
        without stable storage wipes that memory, so once the plan restarts
        ``n - 2t`` or more distinct processes, there exist two quorums whose
        entire intersection is amnesic — a later ballot can then miss an
        accepted value and decide differently (the quorum-amnesia hazard; see
        ``tests/integration/test_quorum_amnesia.py`` for a deterministic
        schedule).  The check is deliberately conservative: it counts restarted
        processes, not whether message timing actually exploits them.

        Returns human-readable hazard descriptions — empty when the plan is
        amnesia-safe or when the system runs with stable storage (persisted
        promises make restarts memory-preserving, so the hazard vanishes; the
        sharded service only records hazards with its ``stable_storage`` knob
        off).

        Snapshots/compaction (:mod:`repro.storage.snapshot`) do **not** affect
        this reasoning in either direction.  A snapshot restores *applied*
        state, never an acceptor's promise memory, so a compacting replica
        without storage is exactly as amnesic as a non-compacting one — the
        hazard check is identical with the ``compaction`` knob on.  Conversely,
        truncating durable acceptor state below the snapshot floor does not
        *create* a hazard: those positions are decided, truncated replicas
        stay silent for them (indistinguishable from a crashed acceptor), and
        any prepare quorum that completes still intersects the accept quorum
        in a non-truncated witness.
        """
        validate_process_count(n, t)
        restarted = self.restarted_ids()
        threshold = n - 2 * t
        if not restarted or len(restarted) < threshold:
            return []
        return [
            f"plan restarts {len(restarted)} processes {restarted} without stable "
            f"storage; any {threshold} of them can cover a quorum intersection "
            f"(quorums of {n - t} out of n={n} overlap in >= {threshold}), so "
            "back-to-back restarts can silently shrink a promise quorum and "
            "break agreement"
        ]

    def validate(self, n: int, t: int, require_quorum_memory: bool = False) -> None:
        """Check the plan against the system parameters.

        Raises ``ValueError`` when a pid is out of range, a :class:`Recover`
        targets a process that is not down, or more than ``t`` processes are down
        at any instant (the crash budget of ``AS_{n,t}``, generalised to
        crash-recovery as a bound on *concurrently* down processes).

        With ``require_quorum_memory=True`` the plan is additionally rejected
        when :meth:`amnesia_hazards` is non-empty — the admission mode for
        systems that run consensus *without* stable storage and cannot afford
        restarts eating into quorum intersections.  Leave it off (the default)
        when storage is on, or for workloads above the consensus layer's
        safety concerns (e.g. plain Omega runs, where restarts only delay
        stabilisation).
        """
        validate_process_count(n, t)

        def check_pid(pid: int, what: str) -> None:
            if not 0 <= pid < n:
                raise ValueError(f"{what} pid {pid} outside [0, {n})")

        down: Set[int] = set()
        for event in self._chronological():
            kind = type(event)
            if kind is Crash:
                check_pid(event.pid, "crashing")
                if event.pid in down:
                    raise ValueError(
                        f"process {event.pid} crashes at {event.time} while already down"
                    )
                down.add(event.pid)
                if len(down) > t:
                    raise ValueError(
                        f"plan has {len(down)} processes down at time {event.time} "
                        f"but t={t}"
                    )
            elif kind is Recover:
                check_pid(event.pid, "recovering")
                if event.pid not in down:
                    raise ValueError(
                        f"process {event.pid} recovers at {event.time} without being down"
                    )
                down.discard(event.pid)
            elif kind is PartitionStart:
                for group in event.groups:
                    for pid in group:
                        check_pid(pid, "partitioned")
            elif kind is LinkFault:
                check_pid(event.sender, "link sender")
                check_pid(event.dest, "link dest")
            elif kind is LinkHeal:
                check_pid(event.sender, "link sender")
                check_pid(event.dest, "link dest")
            elif kind is CorruptLink:
                check_pid(event.sender, "corrupting link sender")
                check_pid(event.dest, "corrupting link dest")
            elif kind is SlowProcess:
                check_pid(event.pid, "slowed")
        if require_quorum_memory:
            hazards = self.amnesia_hazards(n, t)
            if hazards:
                raise ValueError(
                    "plan is amnesia-unsafe without stable storage: "
                    + "; ".join(hazards)
                )

    def describe(self) -> str:
        """Human-readable one-line description (used in reports and demos)."""
        if not self.events:
            return "fault-plan(none)"
        parts = ", ".join(event.describe() for event in self._chronological())
        return f"fault-plan({parts})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.events!r})"


# ---------------------------------------------------------------------------- link state
class _LinkSpec:
    """Mutable fault state of one directed link (internal to :class:`LinkState`)."""

    __slots__ = ("block", "loss_probability", "delay_factor", "delay_add")

    def __init__(
        self,
        block: bool,
        loss_probability: float,
        delay_factor: float,
        delay_add: float,
    ) -> None:
        self.block = block
        self.loss_probability = loss_probability
        self.delay_factor = delay_factor
        self.delay_add = delay_add


class LinkState:
    """The current reachability / quality matrix of the directed links.

    Installed on a :class:`~repro.simulation.network.Network` only when the
    fault plan contains topology events, so fault-free and pure crash-stop runs
    pay nothing beyond a single ``is None`` check per message.  Loss decisions
    draw from a dedicated RNG stream (never the delay model's), so topology
    faults cannot perturb delay draws elsewhere in the run.
    """

    __slots__ = (
        "_component_of",
        "_corrupt",
        "_groups",
        "_links",
        "_slow",
        "_rng",
        "epoch",
    )

    def __init__(self, rng: RandomSource) -> None:
        self._component_of: Optional[Dict[int, int]] = None
        self._groups: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._links: Dict[Tuple[int, int], _LinkSpec] = {}
        self._corrupt: Dict[Tuple[int, int], float] = {}
        self._slow: Dict[int, float] = {}
        self._rng = rng
        #: Bumped on every topology change; lets observers cache derived views.
        self.epoch = 0

    # ------------------------------------------------------------------ queries --
    def reachable(self, sender: int, dest: int) -> bool:
        """True when a message from *sender* can currently reach *dest*."""
        component_of = self._component_of
        if component_of is not None and component_of.get(sender) != component_of.get(dest):
            return False
        spec = self._links.get((sender, dest))
        return spec is None or not spec.block

    def adjust(self, sender: int, dest: int, delay: float) -> Optional[float]:
        """Transform a drawn *delay* for the link; ``None`` drops the message."""
        spec = self._links.get((sender, dest))
        if spec is not None:
            if spec.loss_probability and self._rng.random() < spec.loss_probability:
                return None
            delay = delay * spec.delay_factor + spec.delay_add
        slow = self._slow
        if slow:
            factor = slow.get(sender)
            if factor is not None:
                delay *= factor
            if dest != sender:  # self-deliveries are slowed once, not twice
                factor = slow.get(dest)
                if factor is not None:
                    delay *= factor
        return delay

    def maybe_corrupt(self, sender: int, dest: int, message: object) -> Optional[object]:
        """Return a tampered copy of *message* for this link, or ``None``.

        ``None`` means the link is not corrupting, the per-message probability
        draw spared this message, or the message carries no corruptible payload
        (Omega control traffic) — the caller delivers the original and records
        no corruption.  Draws come from the fault layer's dedicated RNG stream;
        a fully corrupting link (probability 1) draws only for the garble
        itself.
        """
        probability = self._corrupt.get((sender, dest))
        if probability is None:
            return None
        if probability < 1.0 and self._rng.random() >= probability:
            return None
        return corrupt_message(message, self._rng)

    def partition_groups(self, n: int) -> Optional[List[List[int]]]:
        """The partition currently in force as explicit pid groups, or ``None``."""
        if self._component_of is None:
            return None
        by_component: Dict[int, List[int]] = {}
        for pid in range(n):
            by_component.setdefault(self._component_of.get(pid, -1), []).append(pid)
        return [sorted(group) for _, group in sorted(by_component.items())]

    @property
    def partitioned(self) -> bool:
        """True while a partition is in force."""
        return self._component_of is not None

    # ------------------------------------------------------------------ mutation --
    def set_partition(self, groups: Tuple[Tuple[int, ...], ...], n: int) -> None:
        """Install a partition (replacing any current one).

        Processes not named by *groups* implicitly share one extra side.
        """
        component_of: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for pid in group:
                component_of[pid] = index
        rest = len(groups)
        for pid in range(n):
            component_of.setdefault(pid, rest)
        self._component_of = component_of
        self._groups = groups
        self.epoch += 1

    def heal_partition(self) -> None:
        """Remove the partition currently in force."""
        self._component_of = None
        self._groups = None
        self.epoch += 1

    def set_link_fault(self, fault: LinkFault) -> None:
        """Install (or replace) the fault on the ``sender -> dest`` link."""
        self._links[(fault.sender, fault.dest)] = _LinkSpec(
            fault.block, fault.loss_probability, fault.delay_factor, fault.delay_add
        )
        self.epoch += 1

    def heal_link(self, sender: int, dest: int) -> None:
        """Restore the ``sender -> dest`` link to its nominal behaviour."""
        self._links.pop((sender, dest), None)
        self.epoch += 1

    def set_corruption(self, fault: CorruptLink) -> None:
        """Install (or replace) payload corruption on the ``sender -> dest`` link."""
        self._corrupt[(fault.sender, fault.dest)] = fault.probability
        self.epoch += 1

    def heal_corruption(self, sender: int, dest: int) -> None:
        """Stop corrupting payloads on the ``sender -> dest`` link."""
        self._corrupt.pop((sender, dest), None)
        self.epoch += 1

    def set_slowdown(self, pid: int, factor: float) -> None:
        """Install (``factor != 1``) or remove (``factor == 1``) a slowdown."""
        if factor == 1.0:
            self._slow.pop(pid, None)
        else:
            self._slow[pid] = factor
        self.epoch += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkState(partitioned={self.partitioned}, "
            f"links={len(self._links)}, corrupt={len(self._corrupt)}, "
            f"slow={len(self._slow)})"
        )


# ---------------------------------------------------------------------------- injector
class FaultInjector:
    """Schedules a :class:`FaultPlan` on a system and applies its events.

    One injector is owned by one :class:`~repro.simulation.system.System`; it is
    the only object that crashes, recovers or re-wires that system at run time.
    Events may also be injected after construction (:meth:`inject`), e.g. by an
    adaptive test harness reacting to the execution — the plan object is kept in
    sync so correct-set queries always reflect every known event.
    """

    def __init__(self, system: "System", plan: FaultPlan) -> None:  # noqa: F821
        self._system = system
        self.plan = plan
        self.link_state: Optional[LinkState] = None
        #: Events that could not be applied at their scheduled time (e.g. a
        #: Recover whose target is not crashed because a same-timestamp race
        #: reordered it after injection): human-readable descriptions, mirroring
        #: adversary refusals.  Such events changed nothing — they must not be
        #: read as applied.
        self.rejections: List[str] = []
        # Monotone tokens guarding the auto-heals of `until`-bearing faults: a
        # scheduled heal only fires if no newer fault re-faulted the same link
        # (or re-slowed the same process) in the meantime.
        self._link_fault_tokens: Dict[Tuple[int, int], int] = {}
        self._corruption_tokens: Dict[Tuple[int, int], int] = {}
        self._slowdown_tokens: Dict[int, int] = {}
        if plan.has_topology_events():
            self._ensure_link_state()

    def _ensure_link_state(self) -> LinkState:
        if self.link_state is None:
            self.link_state = LinkState(
                self._system._master_rng.child("fault-links")
            )
            self._system.network.install_link_state(self.link_state)
        return self.link_state

    # ------------------------------------------------------------------ scheduling --
    def schedule_plan(self) -> None:
        """Schedule every event of the plan (called once by the system)."""
        for event in self.plan.events:
            self._schedule(event)

    def _schedule(self, event: FaultEvent) -> None:
        self._system.scheduler.schedule_at(event.time, self._apply, event)

    def inject(self, event: FaultEvent) -> None:
        """Add *event* to the plan at run time and schedule it.

        The event must lie in the future of the system's clock and keep the
        whole plan valid — the same checks the constructor runs (pids in range,
        no recovery of an up process, never more than ``t`` concurrently down)
        apply to injected events, so run-time injection cannot sneak past the
        ``AS_{n,t}`` budget.  Injecting an event bumps the system's fault epoch
        immediately (the *planned* correct set changed), so cached correct-set
        views refresh on next read.
        """
        if event.time < self._system.now:
            raise ValueError(
                f"cannot inject {event.describe()} in the past "
                f"(now={self._system.now})"
            )
        self.plan.add(event)
        try:
            self.plan.validate(self._system.config.n, self._system.config.t)
        except ValueError:
            self.plan.events.pop()
            raise
        if isinstance(event, _TOPOLOGY_EVENTS):
            self._ensure_link_state()
        self._schedule(event)
        self._system._bump_fault_epoch()

    # ------------------------------------------------------------------ application --
    def _apply(self, event: FaultEvent) -> None:
        system = self._system
        kind = type(event)
        if kind is Crash:
            system._apply_crash(event.pid)
        elif kind is Recover:
            if not system._apply_recover(event.pid):
                self.rejections.append(
                    f"{event.describe()} rejected: process {event.pid} is not crashed"
                )
        elif kind is PartitionStart:
            self._ensure_link_state().set_partition(event.groups, system.config.n)
            system._bump_fault_epoch()
        elif kind is PartitionHeal:
            self._ensure_link_state().heal_partition()
            system._bump_fault_epoch()
        elif kind is LinkFault:
            link_state = self._ensure_link_state()
            link_state.set_link_fault(event)
            key = (event.sender, event.dest)
            token = self._link_fault_tokens.get(key, 0) + 1
            self._link_fault_tokens[key] = token
            if event.until is not None:
                system.scheduler.schedule_at(
                    event.until, self._heal_link_cb, (key, token)
                )
            system._bump_fault_epoch()
        elif kind is LinkHeal:
            # An explicit heal restores the link to nominal behaviour in every
            # respect: loss/delay faults and payload corruption alike.
            link_state = self._ensure_link_state()
            link_state.heal_link(event.sender, event.dest)
            link_state.heal_corruption(event.sender, event.dest)
            system._bump_fault_epoch()
        elif kind is CorruptLink:
            link_state = self._ensure_link_state()
            link_state.set_corruption(event)
            key = (event.sender, event.dest)
            token = self._corruption_tokens.get(key, 0) + 1
            self._corruption_tokens[key] = token
            if event.until is not None:
                system.scheduler.schedule_at(
                    event.until, self._heal_corruption_cb, (key, token)
                )
            system._bump_fault_epoch()
        elif kind is SlowProcess:
            link_state = self._ensure_link_state()
            link_state.set_slowdown(event.pid, event.factor)
            token = self._slowdown_tokens.get(event.pid, 0) + 1
            self._slowdown_tokens[event.pid] = token
            if event.until is not None:
                system.scheduler.schedule_at(
                    event.until, self._end_slowdown_cb, (event.pid, token)
                )
            system._bump_fault_epoch()
        else:  # pragma: no cover - future event kinds
            raise TypeError(f"unknown fault event {event!r}")

    def _heal_link_cb(self, arg: Tuple[Tuple[int, int], int]) -> None:
        key, token = arg
        # Only the *latest* fault on this link may auto-heal it: if a newer
        # LinkFault re-faulted the link inside this fault's window, its token is
        # higher and this expired heal must not remove it.
        if self._link_fault_tokens.get(key) == token:
            self.link_state.heal_link(*key)
            self._system._bump_fault_epoch()

    def _end_slowdown_cb(self, arg: Tuple[int, int]) -> None:
        pid, token = arg
        if self._slowdown_tokens.get(pid) == token:
            self.link_state.set_slowdown(pid, 1.0)
            self._system._bump_fault_epoch()

    def _heal_corruption_cb(self, arg: Tuple[Tuple[int, int], int]) -> None:
        key, token = arg
        if self._corruption_tokens.get(key) == token:
            self.link_state.heal_corruption(*key)
            self._system._bump_fault_epoch()


__all__ = [
    "CorruptLink",
    "Crash",
    "EVENT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkFault",
    "LinkHeal",
    "LinkState",
    "PartitionHeal",
    "PartitionStart",
    "Recover",
    "SlowProcess",
    "event_from_dict",
    "event_to_dict",
]
