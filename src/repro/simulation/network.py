"""Reliable, non-FIFO message-passing network.

The network implements the paper's communication model: every ordered pair of
processes is connected by a directed link that neither creates, alters nor loses
messages, imposes no bound on transfer delays and is not required to be FIFO.  Delays
are decided per message by a :class:`~repro.simulation.delays.DelayModel`; since two
messages on the same link may receive different delays, deliveries naturally reorder,
which exercises the non-FIFO part of the model.

Messages addressed to a crashed process are discarded at delivery time (receiving is
a local step the crashed process no longer executes); messages *from* a process that
crashed after sending are still delivered, matching the model in which a send that
completed before the crash is effective.

The fault layer can degrade links below the paper's model: when a
:class:`~repro.simulation.faults.LinkState` matrix is installed (only for fault
plans with topology events), each send first consults it — unreachable
destinations are dropped before a delay is drawn, faulted links lose or slow
messages, and corrupting links replace the payload with a garbled copy
(:mod:`repro.simulation.corruption`) while still delivering on time.

Hot-path design
---------------
The paper's algorithms broadcast ALIVE/SUSPICION every period — n² messages per
round — so per-message cost dominates simulated throughput.  Three choices keep one
message cheap:

* :meth:`Network.broadcast` is the native fan-out entry point: the innermost tag and
  round number of the (possibly wrapped) message are computed **once** per broadcast
  and shared by every destination, instead of re-walking the envelope chain per
  destination as a loop of :meth:`Network.send` calls would.
* :class:`Envelope` is a plain ``__slots__`` object that carries its precomputed
  ``tag``, and is handed directly to the scheduler as the event argument — no
  closure, no dict, and delivery never re-derives the tag.
* :class:`NetworkStats` keeps plain integer counters keyed by interned tags (dict
  views are materialised lazily), and trace bookkeeping is skipped entirely when no
  tracer is installed.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.composition import unwrap_round_number, unwrap_tag
from repro.core.interfaces import Message
from repro.simulation.delays import DelayModel, MessageContext
from repro.simulation.scheduler import EventScheduler


class Envelope:
    """A message in flight.

    A slotted record rather than a dataclass: one envelope is allocated per
    (message, destination) pair on the simulator's hottest path, and it doubles as
    the scheduler event argument.  ``tag`` is the innermost protocol tag, computed
    once at send time and reused by delivery-time accounting.
    """

    __slots__ = (
        "msg_id",
        "sender",
        "dest",
        "message",
        "send_time",
        "deliver_time",
        "tag",
        "corrupted",
    )

    def __init__(
        self,
        msg_id: int,
        sender: int,
        dest: int,
        message: Message,
        send_time: float,
        deliver_time: float,
        tag: str,
        corrupted: bool = False,
    ) -> None:
        self.msg_id = msg_id
        self.sender = sender
        self.dest = dest
        self.message = message
        self.send_time = send_time
        self.deliver_time = deliver_time
        self.tag = tag
        self.corrupted = corrupted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Envelope(msg_id={self.msg_id}, {self.sender}->{self.dest}, "
            f"tag={self.tag!r}, deliver_time={self.deliver_time})"
        )


class NetworkStats:
    """Message accounting used by the cost experiments (E6, E9).

    Counters are plain ``dict[str, int]`` / ``dict[int, int]`` updated inline (the
    per-message cost is two dict increments and an integer add); the public
    ``*_by_tag`` / ``*_by_process`` attributes of the original API are exposed as
    lazily materialised :class:`collections.Counter` views, so ``as_dict()`` output
    and ``stats.sent_by_tag["ALIVE"]``-style reads are unchanged.
    """

    __slots__ = (
        "_sent_by_tag",
        "_delivered_by_tag",
        "_dropped_by_tag",
        "_corrupted_by_tag",
        "_sent_by_process",
        "_delivered_to_process",
        "_total_sent",
        "_total_delivered",
        "_total_dropped",
        "_total_corrupted",
        "_corrupted_delivered",
        "total_delay",
        "max_delay",
    )

    def __init__(self) -> None:
        self._sent_by_tag: Dict[str, int] = {}
        self._delivered_by_tag: Dict[str, int] = {}
        self._dropped_by_tag: Dict[str, int] = {}
        self._corrupted_by_tag: Dict[str, int] = {}
        self._sent_by_process: Dict[int, int] = {}
        self._delivered_to_process: Dict[int, int] = {}
        self._total_sent = 0
        self._total_delivered = 0
        self._total_dropped = 0
        self._total_corrupted = 0
        self._corrupted_delivered = 0
        self.total_delay = 0.0
        self.max_delay = 0.0

    # -- lazy dict views (API-compatible with the former Counter attributes) ------
    @property
    def sent_by_tag(self) -> Counter:
        """Messages handed to the network, per innermost tag."""
        return Counter(self._sent_by_tag)

    @property
    def delivered_by_tag(self) -> Counter:
        """Messages delivered to a live process, per innermost tag."""
        return Counter(self._delivered_by_tag)

    @property
    def dropped_by_tag(self) -> Counter:
        """Messages dropped (lossy links or destination crashed), per tag."""
        return Counter(self._dropped_by_tag)

    @property
    def corrupted_by_tag(self) -> Counter:
        """Messages whose payload was tampered in flight, per innermost tag."""
        return Counter(self._corrupted_by_tag)

    @property
    def sent_by_process(self) -> Counter:
        """Messages handed to the network, per sender."""
        return Counter(self._sent_by_process)

    @property
    def delivered_to_process(self) -> Counter:
        """Messages delivered, per destination."""
        return Counter(self._delivered_to_process)

    @property
    def total_sent(self) -> int:
        """Total number of messages handed to the network."""
        return self._total_sent

    @property
    def total_delivered(self) -> int:
        """Total number of messages delivered to a live process."""
        return self._total_delivered

    @property
    def total_dropped(self) -> int:
        """Messages dropped (lossy links or destination crashed)."""
        return self._total_dropped

    @property
    def total_corrupted(self) -> int:
        """Messages whose payload was tampered in flight.

        Counted at send time, when a :class:`~repro.simulation.faults.CorruptLink`
        actually garbled the payload; the receiving side's integrity check is
        what turns these deliveries into rejections (see
        ``ReplicatedLog.corrupt_rejected``)."""
        return self._total_corrupted

    @property
    def corrupted_delivered(self) -> int:
        """Tampered messages actually handed to an alive destination.

        At most :attr:`total_corrupted` (a tampered message addressed to a
        crashed process is dropped like any other).  Unlike the receiver-side
        rejection counters, this network-side count survives crash-recovery
        (a recovered process restarts its algorithm — and its counters — from
        the initial state)."""
        return self._corrupted_delivered

    @property
    def mean_delay(self) -> float:
        """Mean transfer delay over delivered messages."""
        delivered = self._total_delivered
        return self.total_delay / delivered if delivered else 0.0

    # -- recording (hot path) ------------------------------------------------------
    def record_sent(self, tag: str, sender: int, count: int = 1) -> None:
        """Count *count* messages with *tag* handed to the network by *sender*."""
        self._total_sent += count
        by_tag = self._sent_by_tag
        by_tag[tag] = by_tag.get(tag, 0) + count
        by_process = self._sent_by_process
        by_process[sender] = by_process.get(sender, 0) + count

    def record_delivered(self, tag: str, dest: int, delay: float) -> None:
        self._total_delivered += 1
        by_tag = self._delivered_by_tag
        by_tag[tag] = by_tag.get(tag, 0) + 1
        to_process = self._delivered_to_process
        to_process[dest] = to_process.get(dest, 0) + 1
        self.total_delay += delay
        if delay > self.max_delay:
            self.max_delay = delay

    def record_dropped(self, tag: str) -> None:
        self._total_dropped += 1
        by_tag = self._dropped_by_tag
        by_tag[tag] = by_tag.get(tag, 0) + 1

    def record_corrupted(self, tag: str) -> None:
        self._total_corrupted += 1
        by_tag = self._corrupted_by_tag
        by_tag[tag] = by_tag.get(tag, 0) + 1

    def record_corrupted_delivered(self) -> None:
        self._corrupted_delivered += 1

    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly summary."""
        return {
            "sent": dict(self._sent_by_tag),
            "delivered": dict(self._delivered_by_tag),
            "dropped": dict(self._dropped_by_tag),
            "corrupted": dict(self._corrupted_by_tag),
            "total_sent": self._total_sent,
            "total_delivered": self._total_delivered,
            "total_dropped": self._total_dropped,
            "total_corrupted": self._total_corrupted,
            "corrupted_delivered": self._corrupted_delivered,
            "mean_delay": self.mean_delay,
            "max_delay": self.max_delay,
        }


#: Callback invoked at delivery time: (sender, message) -> None.
DeliveryCallback = Callable[[int, Message], None]
#: Callback telling the network whether a destination is still alive.
LivenessCallback = Callable[[], bool]


class Network:
    """Message transport between the simulated processes."""

    def __init__(
        self,
        scheduler: EventScheduler,
        delay_model: DelayModel,
        tracer: Optional[object] = None,
    ) -> None:
        self._scheduler = scheduler
        self.delay_model = delay_model
        self._tracer = tracer
        self._deliver: Dict[int, DeliveryCallback] = {}
        self._is_alive: Dict[int, LivenessCallback] = {}
        #: pid -> (is_alive, deliver): one dict hit per delivery instead of two.
        self._endpoints: Dict[int, tuple] = {}
        # Messages are scheduled through the queue's raw push (deliver_time is
        # ``now + delay`` with delay >= 0, so the schedule_at validation is
        # redundant on this path).
        self._push_event = scheduler.push_event
        self._msg_ids = itertools.count(1)
        self._registered_ids: List[int] = []
        # Reachability/quality matrix; installed by the fault injector only when
        # the fault plan contains topology events, so fault-free and pure
        # crash-stop runs pay a single ``is None`` check per message.
        self._link_state = None
        self.stats = NetworkStats()

    # ------------------------------------------------------------------ wiring --
    def register(
        self, pid: int, deliver: DeliveryCallback, is_alive: LivenessCallback
    ) -> None:
        """Register the delivery endpoint of process *pid*."""
        if pid in self._deliver:
            raise ValueError(f"process {pid} already registered with the network")
        self._deliver[pid] = deliver
        self._is_alive[pid] = is_alive
        self._endpoints[pid] = (is_alive, deliver)
        self._registered_ids = sorted(self._deliver)

    @property
    def registered_ids(self) -> list:
        """Return the registered process ids (sorted; cached at registration)."""
        return list(self._registered_ids)

    def install_link_state(self, link_state) -> None:
        """Install the :class:`~repro.simulation.faults.LinkState` matrix.

        From this call on, every send consults *link_state* before the delay
        model draws a delay: unreachable destinations drop the message without a
        draw, and reachable ones have their drawn delay transformed (inflation,
        probabilistic loss on faulted links).
        """
        self._link_state = link_state

    @property
    def link_state(self):
        """The installed link-state matrix, or ``None`` (healthy topology)."""
        return self._link_state

    # ------------------------------------------------------------------ transport --
    def send(
        self, sender: int, dest: int, message: Message, extra_delay: float = 0.0
    ) -> Optional[Envelope]:
        """Send *message* from *sender* to *dest*.

        ``extra_delay`` is added to the drawn delay (after link adjustments);
        the stable-storage layer uses it to charge durable-write costs on the
        messages of the writing handler turn (fsync before reply).  It never
        affects loss decisions or RNG draws, so passing 0.0 is byte-identical
        to not passing it.

        Returns the in-flight :class:`Envelope`, or ``None`` when the delay model
        dropped the message (lossy links only).
        """
        if dest not in self._deliver:
            raise KeyError(f"destination process {dest} is not registered")
        tag = unwrap_tag(message)
        self.stats.record_sent(tag, sender)
        return self._dispatch(
            sender,
            dest,
            message,
            tag,
            unwrap_round_number(message),
            self._scheduler.now,
            extra_delay,
        )

    def broadcast(
        self,
        sender: int,
        dests: Sequence[int],
        message: Message,
        extra_delay: float = 0.0,
    ) -> List[Optional[Envelope]]:
        """Send *message* from *sender* to every process in *dests*.

        Semantically identical to a loop of :meth:`send` calls over *dests* (one
        independent delay decision per destination, in order; per-destination
        drops; identical stats), but the envelope walk — innermost tag and round
        number of a possibly :class:`~repro.core.messages.Wrapped` message — is
        done once and shared by the whole fan-out.

        Returns the per-destination in-flight envelopes (``None`` where the delay
        model dropped the message).
        """
        if not dests:
            # Parity with the loop-of-sends path: no stats entries, not even
            # zero-count tag/sender keys.
            return []
        deliver = self._deliver
        for dest in dests:
            if dest not in deliver:
                raise KeyError(f"destination process {dest} is not registered")
        tag = unwrap_tag(message)
        rn = unwrap_round_number(message)
        now = self._scheduler.now
        self.stats.record_sent(tag, sender, count=len(dests))
        dispatch = self._dispatch
        return [
            dispatch(sender, dest, message, tag, rn, now, extra_delay)
            for dest in dests
        ]

    def _dispatch(
        self,
        sender: int,
        dest: int,
        message: Message,
        tag: str,
        round_number: Optional[int],
        send_time: float,
        extra_delay: float = 0.0,
    ) -> Optional[Envelope]:
        """Decide the delay of one (message, destination) pair and schedule delivery.

        ``record_sent`` has already been done by the caller (once per destination
        for :meth:`send`, in bulk for :meth:`broadcast`).

        Reachability is decided here, at send time: a message blocked by the
        current partition / link cut is lost even if the fault heals before the
        delay model would have delivered it, and a message already in flight
        when a fault starts is unaffected.
        """
        link_state = self._link_state
        if link_state is not None and not link_state.reachable(sender, dest):
            self.stats.record_dropped(tag)
            if self._tracer is not None:
                self._tracer.record(
                    send_time,
                    sender,
                    "message_dropped",
                    tag=tag,
                    dest=dest,
                    reason="unreachable",
                )
            return None
        delay = self.delay_model.delay(
            MessageContext(
                sender=sender,
                dest=dest,
                tag=tag,
                round_number=round_number,
                send_time=send_time,
            )
        )
        if delay is not None and link_state is not None:
            delay = link_state.adjust(sender, dest, delay)
        if delay is None:
            self.stats.record_dropped(tag)
            if self._tracer is not None:
                self._tracer.record(
                    send_time, sender, "message_dropped", tag=tag, dest=dest
                )
            return None
        if delay < 0:
            raise ValueError(
                f"delay model {self.delay_model.describe()} returned negative delay "
                f"{delay} for {tag} {sender}->{dest}"
            )
        if extra_delay:
            # Stable-storage write cost: the sender fsynced before this send,
            # so the message leaves — and arrives — that much later.
            delay += extra_delay
        corrupted = False
        if link_state is not None:
            # Corrupting links tamper with the payload but still deliver: the
            # garbled copy replaces the message for *this* destination only
            # (broadcast envelopes are shared, so a fresh object is built).
            tampered = link_state.maybe_corrupt(sender, dest, message)
            if tampered is not None:
                message = tampered
                corrupted = True
                self.stats.record_corrupted(tag)
                if self._tracer is not None:
                    self._tracer.record(
                        send_time, sender, "message_corrupted", tag=tag, dest=dest
                    )
        envelope = Envelope(
            next(self._msg_ids),
            sender,
            dest,
            message,
            send_time,
            send_time + delay,
            tag,
            corrupted,
        )
        self._push_event(envelope.deliver_time, self._deliver_envelope, envelope)
        if self._tracer is not None:
            self._tracer.record(
                send_time,
                sender,
                "message_sent",
                tag=tag,
                dest=dest,
                deliver_time=envelope.deliver_time,
            )
        return envelope

    def _deliver_envelope(self, envelope: Envelope) -> None:
        dest = envelope.dest
        tag = envelope.tag
        is_alive, deliver = self._endpoints[dest]
        if not is_alive():
            # Reception is a local step; a crashed process takes no steps.
            self.stats.record_dropped(tag)
            return
        delay = envelope.deliver_time - envelope.send_time
        self.stats.record_delivered(tag, dest, delay)
        if envelope.corrupted:
            self.stats.record_corrupted_delivered()
        if self._tracer is not None:
            self._tracer.record(
                envelope.deliver_time,
                dest,
                "message_delivered",
                tag=tag,
                sender=envelope.sender,
                delay=delay,
            )
        deliver(envelope.sender, envelope.message)
