"""Reliable, non-FIFO message-passing network.

The network implements the paper's communication model: every ordered pair of
processes is connected by a directed link that neither creates, alters nor loses
messages, imposes no bound on transfer delays and is not required to be FIFO.  Delays
are decided per message by a :class:`~repro.simulation.delays.DelayModel`; since two
messages on the same link may receive different delays, deliveries naturally reorder,
which exercises the non-FIFO part of the model.

Messages addressed to a crashed process are discarded at delivery time (receiving is
a local step the crashed process no longer executes); messages *from* a process that
crashed after sending are still delivered, matching the model in which a send that
completed before the crash is effective.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import Counter
from typing import Callable, Dict, Optional

from repro.core.composition import unwrap_round_number, unwrap_tag
from repro.core.interfaces import Message
from repro.simulation.delays import DelayModel, MessageContext
from repro.simulation.scheduler import EventScheduler


@dataclasses.dataclass
class Envelope:
    """A message in flight."""

    msg_id: int
    sender: int
    dest: int
    message: Message
    send_time: float
    deliver_time: float


class NetworkStats:
    """Message accounting used by the cost experiments (E6, E9)."""

    def __init__(self) -> None:
        self.sent_by_tag: Counter = Counter()
        self.delivered_by_tag: Counter = Counter()
        self.dropped_by_tag: Counter = Counter()
        self.sent_by_process: Counter = Counter()
        self.delivered_to_process: Counter = Counter()
        self.total_delay = 0.0
        self.max_delay = 0.0

    @property
    def total_sent(self) -> int:
        """Total number of messages handed to the network."""
        return sum(self.sent_by_tag.values())

    @property
    def total_delivered(self) -> int:
        """Total number of messages delivered to a live process."""
        return sum(self.delivered_by_tag.values())

    @property
    def total_dropped(self) -> int:
        """Messages dropped (lossy links or destination crashed)."""
        return sum(self.dropped_by_tag.values())

    @property
    def mean_delay(self) -> float:
        """Mean transfer delay over delivered messages."""
        delivered = self.total_delivered
        return self.total_delay / delivered if delivered else 0.0

    def record_sent(self, tag: str, sender: int) -> None:
        self.sent_by_tag[tag] += 1
        self.sent_by_process[sender] += 1

    def record_delivered(self, tag: str, dest: int, delay: float) -> None:
        self.delivered_by_tag[tag] += 1
        self.delivered_to_process[dest] += 1
        self.total_delay += delay
        self.max_delay = max(self.max_delay, delay)

    def record_dropped(self, tag: str) -> None:
        self.dropped_by_tag[tag] += 1

    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly summary."""
        return {
            "sent": dict(self.sent_by_tag),
            "delivered": dict(self.delivered_by_tag),
            "dropped": dict(self.dropped_by_tag),
            "total_sent": self.total_sent,
            "total_delivered": self.total_delivered,
            "total_dropped": self.total_dropped,
            "mean_delay": self.mean_delay,
            "max_delay": self.max_delay,
        }


#: Callback invoked at delivery time: (sender, message) -> None.
DeliveryCallback = Callable[[int, Message], None]
#: Callback telling the network whether a destination is still alive.
LivenessCallback = Callable[[], bool]


class Network:
    """Message transport between the simulated processes."""

    def __init__(
        self,
        scheduler: EventScheduler,
        delay_model: DelayModel,
        tracer: Optional[object] = None,
    ) -> None:
        self._scheduler = scheduler
        self.delay_model = delay_model
        self._tracer = tracer
        self._deliver: Dict[int, DeliveryCallback] = {}
        self._is_alive: Dict[int, LivenessCallback] = {}
        self._msg_ids = itertools.count(1)
        self.stats = NetworkStats()

    # ------------------------------------------------------------------ wiring --
    def register(
        self, pid: int, deliver: DeliveryCallback, is_alive: LivenessCallback
    ) -> None:
        """Register the delivery endpoint of process *pid*."""
        if pid in self._deliver:
            raise ValueError(f"process {pid} already registered with the network")
        self._deliver[pid] = deliver
        self._is_alive[pid] = is_alive

    @property
    def registered_ids(self) -> list:
        """Return the registered process ids (sorted)."""
        return sorted(self._deliver)

    # ------------------------------------------------------------------ transport --
    def send(self, sender: int, dest: int, message: Message) -> Optional[Envelope]:
        """Send *message* from *sender* to *dest*.

        Returns the in-flight :class:`Envelope`, or ``None`` when the delay model
        dropped the message (lossy links only).
        """
        if dest not in self._deliver:
            raise KeyError(f"destination process {dest} is not registered")
        tag = unwrap_tag(message)
        ctx = MessageContext(
            sender=sender,
            dest=dest,
            tag=tag,
            round_number=unwrap_round_number(message),
            send_time=self._scheduler.now,
        )
        self.stats.record_sent(tag, sender)
        delay = self.delay_model.delay(ctx)
        if delay is None:
            self.stats.record_dropped(tag)
            self._trace(ctx.send_time, sender, "message_dropped", tag=tag, dest=dest)
            return None
        if delay < 0:
            raise ValueError(
                f"delay model {self.delay_model.describe()} returned negative delay "
                f"{delay} for {ctx}"
            )
        envelope = Envelope(
            msg_id=next(self._msg_ids),
            sender=sender,
            dest=dest,
            message=message,
            send_time=ctx.send_time,
            deliver_time=ctx.send_time + delay,
        )
        self._scheduler.schedule_at(
            envelope.deliver_time, lambda env=envelope: self._deliver_envelope(env)
        )
        self._trace(
            ctx.send_time,
            sender,
            "message_sent",
            tag=tag,
            dest=dest,
            deliver_time=envelope.deliver_time,
        )
        return envelope

    def _deliver_envelope(self, envelope: Envelope) -> None:
        tag = unwrap_tag(envelope.message)
        if not self._is_alive[envelope.dest]():
            # Reception is a local step; a crashed process takes no steps.
            self.stats.record_dropped(tag)
            return
        delay = envelope.deliver_time - envelope.send_time
        self.stats.record_delivered(tag, envelope.dest, delay)
        self._trace(
            envelope.deliver_time,
            envelope.dest,
            "message_delivered",
            tag=tag,
            sender=envelope.sender,
            delay=delay,
        )
        self._deliver[envelope.dest](envelope.sender, envelope.message)

    # ------------------------------------------------------------------ tracing --
    def _trace(self, time: float, pid: int, kind: str, **details: object) -> None:
        if self._tracer is not None:
            self._tracer.record(time, pid, kind, **details)
