"""Stable storage for crash-recovery: durable per-process state that survives restarts.

The simulator's crash-recovery model (PR 3) restarts a recovered process *from
its initial state*: the :class:`~repro.simulation.system.System` rebuilds the
algorithm object through its process factory, and the replicated log converges
again through catch-up.  That is honest crash recovery **without stable
storage** — and it carries the classic quorum-amnesia hazard: an acceptor that
promised a ballot, crashed and recovered will happily re-promise a *lower*
ballot, so back-to-back restarts can silently shrink the promise quorum behind
an in-flight proposal and break agreement (see
``tests/integration/test_quorum_amnesia.py`` for the deterministic schedule).

This module is the cure, modelled after the durable write-ahead state real
consensus implementations fsync before answering:

* a :class:`StableStore` is the durable key-value area of **one** process.  It
  belongs to the storage layer, not to the algorithm incarnation — a crash
  destroys the algorithm object but never the store, and the recovered
  incarnation rehydrates from it (``ReplicatedLog.attach_storage``);
* a :class:`StableStorage` is the per-system registry handing each pid its
  store (and aggregating write accounting for reports and benchmarks);
* a :class:`WriteCostModel` optionally charges each durable write on the
  virtual clock: the cost of the writes a handler performs is added to the
  delay of every message that handler sends afterwards — the simulator's
  rendering of *fsync before reply*.  With no cost model (the default) writes
  are free, so enabling storage changes durability semantics without touching
  the timing of a run.

What the consensus layer persists (all write-ahead, i.e. before the message
that reveals the state leaves the process):

=======================  =====================================================
key                      value
=======================  =====================================================
``("acceptor", pos)``    ``(promised_ballot, accepted_ballot, accepted_value)``
``("decided", pos)``     the decided value of log position ``pos``
``("attempt", pos)``     highest proposal attempt this process used for ``pos``
                         (so a restarted proposer never reuses one of its own
                         ballots for a different value)
``("snapshot", slot)``   a :class:`~repro.storage.snapshot.Snapshot` capturing
                         the applied state up to its floor (written by the
                         :class:`~repro.storage.snapshot.SnapshotManager`; the
                         last two slots are retained so a torn newest write
                         falls back to the previous one)
=======================  =====================================================

Compaction (:mod:`repro.storage.snapshot`) **deletes** durable entries below
the snapshot floor once a snapshot covers them; deletions are free on the
virtual clock (an unlink needs no fsync-before-reply) but counted in
:attr:`StableStore.deletes` so benchmarks can assert the store itself stays
bounded, not just the in-memory log.

Volatile submissions (``pending`` / ``forwarded`` commands not yet decided) are
deliberately *not* persisted: losing them is plain message loss, which clients
already cover with retransmission — exactly-once is preserved by the decided
log plus the state machine's session table, both of which rehydration restores.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.util.validation import require_non_negative

#: Sentinel distinguishing "absent" from a stored None in delete().
_MISSING = object()


class WriteCostModel:
    """Virtual-time cost of one durable write (the fsync model).

    Parameters
    ----------
    per_write:
        Flat cost charged for every write (the fsync latency).
    per_byte:
        Additional cost per byte of the value's textual representation
        (bandwidth-bound devices); 0 models a latency-bound device.

    The cost is *charged on the virtual clock* by the simulation shell: every
    message the writing handler sends after the write is delayed by the
    accumulated cost of that handler's writes, mirroring a process that fsyncs
    before replying.  Timers are unaffected (a local clock keeps ticking
    through an fsync).
    """

    def __init__(self, per_write: float = 0.5, per_byte: float = 0.0) -> None:
        require_non_negative(per_write, "per_write")
        require_non_negative(per_byte, "per_byte")
        self.per_write = per_write
        self.per_byte = per_byte

    def cost(self, key: object, value: object) -> float:
        """Return the virtual-time cost of durably writing ``key = value``."""
        cost = self.per_write
        if self.per_byte:
            cost += self.per_byte * len(repr(value))
        return cost

    def describe(self) -> str:
        return f"write-cost(per_write={self.per_write:g}, per_byte={self.per_byte:g})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteCostModel({self.describe()})"


class StableStore:
    """The durable key-value area of one process.

    The store survives crashes and recoveries by construction: it is owned by
    the :class:`StableStorage` registry (wired into the
    :class:`~repro.simulation.system.System`), never by the algorithm object a
    recovery replaces.  Keys are small tuples (see the module docstring for the
    schema the consensus layer uses); values are ordinary Python objects — the
    in-memory durable map stands in for an fsynced file, which is all the
    discrete-event model needs.

    Attributes
    ----------
    writes / reads:
        Monotone operation counters (reports, benchmarks).
    total_cost:
        Total virtual-time cost charged by the cost model over all writes.
    """

    def __init__(self, pid: int, cost_model: Optional[WriteCostModel] = None) -> None:
        self.pid = pid
        self.cost_model = cost_model
        self._data: Dict[Any, Any] = {}
        self.writes = 0
        self.reads = 0
        self.deletes = 0
        self.total_cost = 0.0
        self._charge: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------ wiring --
    def bind_charge(self, charge: Callable[[float], None]) -> None:
        """Install the callback that charges write costs on the virtual clock.

        The system binds this to the owning shell's ``charge_storage_write``;
        rebinding (at recovery) is idempotent.  With no cost model the callback
        is never invoked.
        """
        self._charge = charge

    # ------------------------------------------------------------------ access --
    def put(self, key: Any, value: Any) -> None:
        """Durably write ``key = value`` (write-ahead: call *before* sending
        any message that reveals the new state)."""
        self._data[key] = value
        self.writes += 1
        if self.cost_model is not None:
            cost = self.cost_model.cost(key, value)
            if cost:
                self.total_cost += cost
                if self._charge is not None:
                    self._charge(cost)

    def get(self, key: Any, default: Any = None) -> Any:
        """Read the durable value under *key* (``default`` when absent)."""
        self.reads += 1
        return self._data.get(key, default)

    def delete(self, key: Any) -> None:
        """Remove *key* from the durable area (compaction; absent keys ok).

        Free on the virtual clock — removing an entry needs no
        fsync-before-reply the way a write-ahead ``put`` does — but counted,
        so bounded-storage assertions can watch ``deletes`` track compaction.
        """
        if self._data.pop(key, _MISSING) is not _MISSING:
            self.deletes += 1

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def items_with_prefix(self, prefix: str) -> List[Tuple[Any, Any]]:
        """Return ``(key, value)`` pairs whose tuple key starts with *prefix*.

        Sorted by the key's remaining components, so ``("decided", pos)``
        entries come back in log order — the order rehydration must replay
        them in.
        """
        matches = [
            (key, value)
            for key, value in self._data.items()
            if isinstance(key, tuple) and key and key[0] == prefix
        ]
        matches.sort(key=lambda item: item[0][1:])
        return matches

    def snapshot(self) -> Dict[Any, Any]:
        """Return a copy of the durable contents (tests and debugging)."""
        return dict(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StableStore(pid={self.pid}, entries={len(self._data)}, "
            f"writes={self.writes}, cost={self.total_cost:g})"
        )


class StableStorage:
    """Per-system registry of :class:`StableStore` objects, one per process.

    Owned by a :class:`~repro.simulation.system.System` (``storage=`` keyword)
    or, per shard, by a :class:`~repro.service.sharding.ShardedService`
    (``stable_storage=`` knob).  Stores are created lazily and live for the
    whole run — through every crash and recovery of their process.
    """

    def __init__(self, cost_model: Optional[WriteCostModel] = None) -> None:
        self.cost_model = cost_model
        self._stores: Dict[int, StableStore] = {}

    def store_for(self, pid: int) -> StableStore:
        """Return (creating on first use) the durable store of process *pid*."""
        store = self._stores.get(pid)
        if store is None:
            store = StableStore(pid, cost_model=self.cost_model)
            self._stores[pid] = store
        return store

    def stores(self) -> Iterator[StableStore]:
        """Iterate over the stores created so far (ascending pid)."""
        for pid in sorted(self._stores):
            yield self._stores[pid]

    @property
    def total_writes(self) -> int:
        """Durable writes across every process of the system."""
        return sum(store.writes for store in self._stores.values())

    @property
    def total_cost(self) -> float:
        """Virtual-time cost charged across every process of the system."""
        return sum(store.total_cost for store in self._stores.values())

    def describe(self) -> str:
        cost = self.cost_model.describe() if self.cost_model else "free writes"
        return f"stable-storage({len(self._stores)} stores, {cost})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StableStorage({self.describe()})"


__all__ = ["StableStorage", "StableStore", "WriteCostModel"]
