"""Compaction policy: when to snapshot and how much decided tail to retain.

A :class:`CompactionPolicy` is the small immutable knob object shared by every
replica of a service (the mechanism lives in :mod:`repro.storage.snapshot`).
Two parameters shape the steady-state memory window of a compacting replica:

``interval``
    A snapshot is captured whenever the contiguous decided prefix has grown by
    at least this many positions since the last snapshot floor.  Smaller
    intervals bound memory tighter but capture (and, with a
    :class:`~repro.storage.stable_store.WriteCostModel`, pay for) snapshots
    more often.

``retain``
    How many decided positions *below* the snapshot floor stay resident after
    truncation.  The retained tail lets ordinarily-lagging peers — every
    follower trails the leader by the decisions still in flight — catch up
    through plain :class:`~repro.consensus.messages.CatchUpReply` traffic;
    only a peer whose frontier has fallen below the truncation floor needs a
    full snapshot transfer.  ``retain`` should comfortably exceed the typical
    in-flight window (a few drive periods' worth of decisions).

Steady-state residency of the decided log is therefore
``retain .. retain + interval`` positions (plus the handful of out-of-order
decisions above the frontier), independent of how long the run has been going.
"""

from __future__ import annotations

import dataclasses

from repro.util.validation import require_non_negative, require_positive


@dataclasses.dataclass(frozen=True)
class CompactionPolicy:
    """Snapshot-and-truncate policy of one replica group.

    Attributes
    ----------
    interval:
        Capture a snapshot every time the contiguous decided prefix advanced
        by at least this many positions past the last snapshot floor.
    retain:
        Decided positions kept resident below the snapshot floor (the tail
        served to ordinarily-lagging peers without a snapshot transfer).
    """

    interval: int = 128
    retain: int = 32

    def __post_init__(self) -> None:
        require_positive(self.interval, "interval")
        require_non_negative(self.retain, "retain")

    def should_snapshot(self, frontier: int, last_floor: int) -> bool:
        """True when the prefix grew enough past *last_floor* to snapshot."""
        return frontier - last_floor >= self.interval

    def truncation_floor(self, snapshot_floor: int) -> int:
        """First position kept resident after compacting at *snapshot_floor*."""
        return max(0, snapshot_floor - self.retain)

    def describe(self) -> str:
        return f"compaction(interval={self.interval}, retain={self.retain})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompactionPolicy({self.describe()})"


__all__ = ["CompactionPolicy"]
