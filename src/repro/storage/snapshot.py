"""Snapshots and log compaction: bounded-memory replicas with snapshot catch-up.

Without compaction every replica keeps the entire decided log, the decided-value
index and the durable ``("decided", pos)`` entries forever, and a replica that
fell far behind replays the whole history through ``CATCHUP_REQ/REP`` — memory
and recovery time are O(history).  This module adds the classic cure: periodic
**snapshots** of the applied state plus **truncation** of the decided prefix
they cover, so steady-state residency is O(compaction window) and a laggard's
recovery is bounded by one snapshot transfer plus the decided tail.

The pieces
----------
:class:`Snapshot`
    An immutable, CRC-32-checksummed capture of one replica at one log
    position: the state-machine payload (for the key-value service: data,
    exactly-once session table and applied counters), the snapshot ``floor``
    (first position *not* covered), and the log's delivered-prefix metadata
    (count + incremental digest) so an installer adopts consistent observer
    counters.  The checksum follows the :class:`~repro.consensus.commands.
    Command` discipline: computed at construction, verified (memoised) at every
    trust boundary, so the corruption suite cannot forge a snapshot — a
    tampered chunk surfaces as a checksum mismatch over the assembled payload
    and the transfer is rejected and restarted.

:class:`SnapshotManager`
    One per compacting replica, attached to its
    :class:`~repro.consensus.replicated_log.ReplicatedLog`.  It

    * **captures** a snapshot whenever the contiguous decided prefix grew by
      the policy's ``interval`` (persisting it under ``("snapshot", slot)``
      when a :class:`~repro.storage.stable_store.StableStore` is attached —
      charged through the store's ``WriteCostModel`` like any durable write),
      then truncates everything below ``floor - retain`` out of the log and
      the store;
    * **serves** snapshot transfers: a peer whose catch-up frontier lies below
      the truncation floor receives the latest snapshot in bounded
      :class:`~repro.consensus.messages.SnapshotReply` chunks (the receiver
      pulls further chunks with :class:`~repro.consensus.messages.
      SnapshotRequest`, so a lost chunk just stalls until the next poll);
    * **installs** verified snapshots — received over the wire or found
      durable at recovery — restoring the state machine, fast-forwarding the
      log frontier and truncating everything the snapshot covers.

Durable layout: the last **two** snapshot slots are retained.  A crash in the
middle of the newest snapshot write leaves a torn (checksum-failing) entry;
rehydration detects it, falls back to the previous slot and counts the event
in ``snapshots_rejected`` — the window between the two snapshots is still
covered by the durable decided tail, which is only truncated after the newer
snapshot is fully written.

What compaction does **not** change: quorum-amnesia reasoning.  A snapshot
restores *applied* state, never the acceptor's promise memory — only durable
acceptor state (stable storage) prevents a restarted acceptor from re-promising
a lower ballot.  Truncating acceptor state below the floor is safe precisely
because those positions are decided: a truncated acceptor stays silent for
them (messages below the floor are dropped), which the protocol treats like a
crashed acceptor, and any prepare quorum that completes must include a
non-truncated intersection witness.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.consensus.messages import SnapshotReply, SnapshotRequest
from repro.storage.compaction import CompactionPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.consensus.replicated_log import ReplicatedLog
    from repro.storage.stable_store import StableStore


def _crc32(payload: object) -> int:
    """Stable CRC-32 of a payload's textual representation."""
    return zlib.crc32(repr(payload).encode("utf-8"))


#: State-machine items carried per SnapshotReply chunk (bounds message size,
#: mirroring CATCH_UP_BATCH for decided positions).
SNAPSHOT_CHUNK_ITEMS = 64

#: Durable snapshot slots retained (current + previous, the torn-write fallback).
RETAINED_SNAPSHOTS = 2


@dataclasses.dataclass(frozen=True)
class Snapshot:
    """A checksummed capture of one replica's applied state at ``floor``.

    Attributes
    ----------
    floor:
        First log position **not** covered: the capturing replica's contiguous
        decided frontier at capture time.  Installing the snapshot makes the
        installer's frontier exactly ``floor``.
    delivered_total:
        Non-noop values delivered below ``floor`` (the installer's observer
        counter resumes from here).
    digest:
        The log's incremental decided-prefix digest folded up to ``floor``
        (see ``ReplicatedLog.delivered_digest``); installers adopt it so the
        digest chain stays comparable across snapshot-restored replicas.
    payload:
        Opaque state-machine items (the capture callback's output, e.g.
        ``("kv", ...)`` / ``("session", ...)`` rows for the key-value store).
        A flat tuple so transfers can chunk it.
    checksum:
        CRC-32 over all payload fields, filled in at construction; honest code
        never passes ``checksum=`` explicitly.  A snapshot whose stored
        checksum does not match was torn on disk or tampered in flight.
    """

    floor: int
    delivered_total: int
    digest: str
    payload: Tuple[Any, ...]
    checksum: Optional[int] = None

    def __post_init__(self) -> None:
        if self.checksum is None:
            object.__setattr__(self, "checksum", self.expected_checksum())

    def expected_checksum(self) -> int:
        """Recompute the CRC-32 the snapshot's fields should carry."""
        return _crc32((self.floor, self.delivered_total, self.digest, self.payload))

    def verify(self) -> bool:
        """True when the carried checksum matches the contents (memoised)."""
        cached = getattr(self, "_intact", None)
        if cached is None:
            cached = self.checksum == self.expected_checksum()
            object.__setattr__(self, "_intact", cached)
        return cached

    def chunk_count(self, items_per_chunk: int = SNAPSHOT_CHUNK_ITEMS) -> int:
        """Number of :class:`SnapshotReply` chunks the payload splits into."""
        if not self.payload:
            return 1
        return -(-len(self.payload) // items_per_chunk)

    def chunk(
        self, index: int, items_per_chunk: int = SNAPSHOT_CHUNK_ITEMS
    ) -> SnapshotReply:
        """Build the transfer message for chunk *index*."""
        items = self.payload[index * items_per_chunk : (index + 1) * items_per_chunk]
        return SnapshotReply(
            floor=self.floor,
            delivered_total=self.delivered_total,
            digest=self.digest,
            checksum=self.checksum,
            index=index,
            total=self.chunk_count(items_per_chunk),
            items=items,
        )


class _IncomingTransfer:
    """Assembly state of one in-flight snapshot transfer at the receiver."""

    __slots__ = ("floor", "checksum", "delivered_total", "digest", "total", "chunks")

    def __init__(self, first: SnapshotReply) -> None:
        self.floor = first.floor
        self.checksum = first.checksum
        self.delivered_total = first.delivered_total
        self.digest = first.digest
        self.total = first.total
        self.chunks: Dict[int, Tuple[Any, ...]] = {}

    def matches(self, message) -> bool:
        return message.floor == self.floor and message.checksum == self.checksum

    def add(self, message: SnapshotReply) -> None:
        if 0 <= message.index < self.total:
            self.chunks[message.index] = message.items

    @property
    def complete(self) -> bool:
        return len(self.chunks) >= self.total

    def next_missing(self) -> int:
        for index in range(self.total):
            if index not in self.chunks:
                return index
        return self.total  # pragma: no cover - guarded by `complete`

    def assemble(self) -> Snapshot:
        payload: Tuple[Any, ...] = ()
        for index in range(self.total):
            payload += self.chunks[index]
        return Snapshot(
            floor=self.floor,
            delivered_total=self.delivered_total,
            digest=self.digest,
            payload=payload,
            checksum=self.checksum,  # carried, so tampering fails verify()
        )


class SnapshotManager:
    """Snapshot capture, transfer and installation for one replica.

    Parameters
    ----------
    policy:
        The :class:`~repro.storage.compaction.CompactionPolicy` deciding when
        to snapshot and how much decided tail to retain.
    capture:
        Zero-argument callback returning the state machine's payload items
        (a flat tuple of hashable rows); called at each snapshot.
    restore:
        Callback taking such a payload and resetting the state machine to it;
        called when a verified snapshot is installed.

    The manager is bound to its log with :meth:`bind_log` (done by
    ``ReplicatedLog.attach_snapshots``) and, when stable storage is attached,
    to the replica's store with :meth:`bind_store`.

    Counters (harvested into ``SimProcessShell.retired_counters`` across
    recoveries via ``ReplicatedLog.lifetime_counters``):

    ``snapshots_taken``
        Snapshots captured locally.
    ``snapshot_restores``
        Verified snapshots installed — over the wire or from durable storage.
    ``positions_compacted``
        Decided log positions truncated out of memory (and, when durable, out
        of the store).
    ``snapshots_rejected``
        Assembled transfers or durable slots whose checksum failed (tampered
        chunk, torn write).
    ``snapshot_chunks_sent`` / ``snapshot_chunks_received``
        Transfer traffic accounting.
    """

    def __init__(
        self,
        policy: CompactionPolicy,
        capture: Callable[[], Tuple[Any, ...]],
        restore: Callable[[Tuple[Any, ...]], None],
    ) -> None:
        self.policy = policy
        self._capture = capture
        self._restore = restore
        self._log: Optional["ReplicatedLog"] = None
        self._store: Optional["StableStore"] = None
        self._latest: Optional[Snapshot] = None
        self._incoming: Optional[_IncomingTransfer] = None
        self._last_floor = 0
        self._next_slot = 0
        self.snapshots_taken = 0
        self.snapshot_restores = 0
        self.positions_compacted = 0
        self.snapshots_rejected = 0
        self.snapshot_chunks_sent = 0
        self.snapshot_chunks_received = 0

    # ------------------------------------------------------------------ wiring --
    def bind_log(self, log: "ReplicatedLog") -> None:
        self._log = log

    def bind_store(self, store: "StableStore") -> None:
        self._store = store

    @property
    def latest(self) -> Optional[Snapshot]:
        """The newest verified snapshot this replica holds (serves transfers)."""
        return self._latest

    def counters(self) -> Dict[str, int]:
        """Monotone counters carried across incarnations by the shell."""
        return {
            "snapshots_taken": self.snapshots_taken,
            "snapshot_restores": self.snapshot_restores,
            "positions_compacted": self.positions_compacted,
            "snapshots_rejected": self.snapshots_rejected,
            "snapshot_chunks_sent": self.snapshot_chunks_sent,
            "snapshot_chunks_received": self.snapshot_chunks_received,
        }

    # ------------------------------------------------------------------ capture --
    def maybe_snapshot(self) -> None:
        """Capture + compact when the prefix grew past the policy interval.

        Called by the log after each frontier advance; cheap when there is
        nothing to do (one subtraction and compare).
        """
        log = self._log
        if log is None:
            return
        if self.policy.should_snapshot(log.frontier, self._last_floor):
            self.take_snapshot()

    def take_snapshot(self) -> Snapshot:
        """Capture the replica's state at its current frontier and compact.

        The order is crash-safe with durable storage: the snapshot is fully
        persisted (a new slot; the previous slot survives as the torn-write
        fallback) *before* the decided tail below the truncation floor is
        deleted, so at every instant either a verifying snapshot or the full
        decided prefix is durable.
        """
        log = self._log
        snapshot = Snapshot(
            floor=log.frontier,
            delivered_total=log.delivered_total,
            digest=log.delivered_digest(),
            payload=self._capture(),
        )
        self._latest = snapshot
        self._last_floor = snapshot.floor
        self.snapshots_taken += 1
        if self._store is not None:
            self._persist(snapshot)
        self.positions_compacted += log.compact_below(
            self.policy.truncation_floor(snapshot.floor)
        )
        return snapshot

    def _persist(self, snapshot: Snapshot) -> None:
        """Durably write *snapshot* into a fresh slot, then drop old slots."""
        store = self._store
        store.put(("snapshot", self._next_slot), snapshot)
        self._next_slot += 1
        for key, _ in store.items_with_prefix("snapshot"):
            if key[1] <= self._next_slot - 1 - RETAINED_SNAPSHOTS:
                store.delete(key)

    # ------------------------------------------------------------------ serving --
    def serve(self, env, dest: int) -> None:
        """Start a snapshot transfer to *dest* (chunk 0; the receiver pulls on).

        Called by the log when *dest*'s catch-up frontier lies below the
        truncation floor — the positions it wants no longer exist.
        """
        if self._latest is None:
            return
        env.send(dest, self._latest.chunk(0))
        self.snapshot_chunks_sent += 1

    def on_request(self, env, sender: int, message: SnapshotRequest) -> None:
        """Answer a receiver pulling chunk ``message.index``.

        If our latest snapshot moved on since the transfer started, restart the
        receiver on the new one (chunk 0 with a different identity).
        """
        snapshot = self._latest
        if snapshot is None:
            return
        if (
            message.floor != snapshot.floor
            or message.checksum != snapshot.checksum
            or not 0 <= message.index < snapshot.chunk_count()
        ):
            env.send(sender, snapshot.chunk(0))
        else:
            env.send(sender, snapshot.chunk(message.index))
        self.snapshot_chunks_sent += 1

    # ------------------------------------------------------------------ receiving --
    def on_chunk(self, env, sender: int, message: SnapshotReply) -> None:
        """Process one incoming transfer chunk; install when assembly completes."""
        self.snapshot_chunks_received += 1
        log = self._log
        if message.floor <= log.frontier:
            return  # stale transfer: we already advanced past its floor
        incoming = self._incoming
        if incoming is None or not incoming.matches(message):
            if incoming is not None and message.floor < incoming.floor:
                return  # keep assembling the newer snapshot
            incoming = _IncomingTransfer(message)
            self._incoming = incoming
        incoming.add(message)
        if not incoming.complete:
            env.send(
                sender,
                SnapshotRequest(
                    floor=incoming.floor,
                    checksum=incoming.checksum,
                    index=incoming.next_missing(),
                ),
            )
            return
        self._incoming = None
        snapshot = incoming.assemble()
        if not snapshot.verify():
            # A chunk was tampered in flight (the corruption model preserves
            # the carried whole-snapshot checksum, so the garbled payload fails
            # here): reject the transfer.  The next catch-up poll restarts it.
            self.snapshots_rejected += 1
            return
        self.install(snapshot, persist=True)

    # ------------------------------------------------------------------ install --
    def install(self, snapshot: Snapshot, persist: bool) -> bool:
        """Adopt a verified *snapshot*: restore state, fast-forward the log.

        Returns False (a no-op) when the local frontier already reached the
        snapshot's floor.  With ``persist`` the installed snapshot is also
        written durably, so a crash right after installation recovers from it
        instead of an empty store.
        """
        log = self._log
        if snapshot.floor <= log.frontier:
            return False
        self._restore(snapshot.payload)
        self._latest = snapshot
        self._last_floor = snapshot.floor
        if persist and self._store is not None:
            self._persist(snapshot)
        self.positions_compacted += log.adopt_snapshot(snapshot)
        self.snapshot_restores += 1
        return True

    # ------------------------------------------------------------------ recovery --
    def rehydrate(self) -> int:
        """Install the newest *verifying* durable snapshot; return its floor.

        Called by ``ReplicatedLog.attach_storage`` before the decided tail is
        replayed.  A torn newest slot (crash mid-snapshot-write) fails its
        checksum, is counted in ``snapshots_rejected``, deleted, and the
        previous slot is used instead — whose coverage gap is closed by the
        durable decided tail (only truncated after a snapshot is fully
        written).  Returns 0 when no usable snapshot exists.
        """
        store = self._store
        if store is None:
            return 0
        entries = store.items_with_prefix("snapshot")
        if entries:
            self._next_slot = max(key[1] for key, _ in entries) + 1
        best: Optional[Snapshot] = None
        for key, value in reversed(entries):
            if isinstance(value, Snapshot) and value.verify():
                best = value
                break
            self.snapshots_rejected += 1
            store.delete(key)
        if best is None:
            return 0
        self.install(best, persist=False)
        return best.floor


__all__ = [
    "RETAINED_SNAPSHOTS",
    "SNAPSHOT_CHUNK_ITEMS",
    "Snapshot",
    "SnapshotManager",
]
