"""Stable-storage subsystem: durable per-process state for crash-recovery.

See :mod:`repro.storage.stable_store` for the model and the persistence schema
the consensus layer uses.
"""

from repro.storage.stable_store import StableStorage, StableStore, WriteCostModel

__all__ = ["StableStorage", "StableStore", "WriteCostModel"]
