"""Storage subsystem: durable per-process state, snapshots and log compaction.

See :mod:`repro.storage.stable_store` for the durability model and the
persistence schema the consensus layer uses, and
:mod:`repro.storage.snapshot` / :mod:`repro.storage.compaction` for the
bounded-memory snapshot-and-truncate layer built on top of it.
"""

from repro.storage.compaction import CompactionPolicy
from repro.storage.snapshot import Snapshot, SnapshotManager
from repro.storage.stable_store import StableStorage, StableStore, WriteCostModel

__all__ = [
    "CompactionPolicy",
    "Snapshot",
    "SnapshotManager",
    "StableStorage",
    "StableStore",
    "WriteCostModel",
]
