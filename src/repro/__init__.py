"""Reproduction of *From an intermittent rotating star to a leader*.

The package implements, on top of a deterministic discrete-event simulation of the
asynchronous crash-prone system model ``AS_{n,t}`` used by the paper:

* the paper's eventual-leader (Omega) algorithms — Figure 1, Figure 2, the
  bounded-variable Figure 3 algorithm, and the Section-7 ``A_{f,g}`` generalisation
  (:mod:`repro.core`);
* the behavioural assumptions they rely on — the intermittent rotating t-star and all
  of its special cases (:mod:`repro.assumptions`);
* baseline Omega constructions from the related work (:mod:`repro.baselines`);
* an Omega-based indulgent consensus and replicated log realising Theorem 5
  (:mod:`repro.consensus`);
* fair-lossy links and a reliable-channel stack (:mod:`repro.channels`);
* measurement and experiment harnesses (:mod:`repro.analysis`);
* an asyncio real-time runtime for the same algorithm objects (:mod:`repro.runtime`).

Quickstart
----------

>>> from repro import build_omega_system, IntermittentRotatingStarScenario
>>> scenario = IntermittentRotatingStarScenario(n=5, t=2, center=0, seed=1)
>>> system = build_omega_system(n=5, t=2, scenario=scenario, seed=1)
>>> system.run_until(600.0)
>>> sorted({p.algorithm.leader() for p in system.alive_shells()})
[0]
"""

from repro.core import (
    Alive,
    Environment,
    Figure1Omega,
    Figure2Omega,
    Figure3Omega,
    FgOmega,
    LeaderOracle,
    Message,
    OmegaConfig,
    Process,
    Suspicion,
)
from repro.assumptions import (
    AsynchronousAdversaryScenario,
    CombinedMrtScenario,
    EventualTMovingSourceScenario,
    EventualTSourceScenario,
    GrowingStarScenario,
    IntermittentRotatingStarScenario,
    MessagePatternScenario,
    Scenario,
)
from repro.simulation import (
    CrashSchedule,
    DelayModel,
    EventScheduler,
    Network,
    SimProcessShell,
    System,
    SystemConfig,
    UniformDelay,
)
from repro.analysis import (
    ExperimentResult,
    LeaderPoller,
    MessageStats,
    run_omega_experiment,
)
from repro.system_builders import build_omega_system, build_consensus_system

__version__ = "1.0.0"

__all__ = [
    # core
    "Alive",
    "Environment",
    "Figure1Omega",
    "Figure2Omega",
    "Figure3Omega",
    "FgOmega",
    "LeaderOracle",
    "Message",
    "OmegaConfig",
    "Process",
    "Suspicion",
    # assumptions
    "AsynchronousAdversaryScenario",
    "CombinedMrtScenario",
    "EventualTMovingSourceScenario",
    "EventualTSourceScenario",
    "GrowingStarScenario",
    "IntermittentRotatingStarScenario",
    "MessagePatternScenario",
    "Scenario",
    # simulation
    "CrashSchedule",
    "DelayModel",
    "EventScheduler",
    "Network",
    "SimProcessShell",
    "System",
    "SystemConfig",
    "UniformDelay",
    # analysis
    "ExperimentResult",
    "LeaderPoller",
    "MessageStats",
    "run_omega_experiment",
    # builders
    "build_omega_system",
    "build_consensus_system",
    # meta
    "__version__",
]
