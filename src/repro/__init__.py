"""Reproduction of *From an intermittent rotating star to a leader*.

The package implements, on top of a deterministic discrete-event simulation of the
asynchronous crash-prone system model ``AS_{n,t}`` used by the paper:

* the paper's eventual-leader (Omega) algorithms — Figure 1, Figure 2, the
  bounded-variable Figure 3 algorithm, and the Section-7 ``A_{f,g}`` generalisation
  (:mod:`repro.core`);
* the behavioural assumptions they rely on — the intermittent rotating t-star and all
  of its special cases (:mod:`repro.assumptions`);
* baseline Omega constructions from the related work (:mod:`repro.baselines`);
* an Omega-based indulgent consensus and replicated log realising Theorem 5
  (:mod:`repro.consensus`);
* fair-lossy links and a reliable-channel stack (:mod:`repro.channels`);
* stable storage for crash-recovery — durable acceptor promises and decided
  prefixes that recovered replicas rehydrate from (:mod:`repro.storage`);
* a client-facing sharded key-value service served by the consensus stack
  (:mod:`repro.service`): replicated state machines, batched proposals,
  exactly-once client sessions and workload generators;
* measurement and experiment harnesses (:mod:`repro.analysis`);
* an asyncio real-time runtime for the same algorithm objects (:mod:`repro.runtime`).

Quickstart
----------

>>> from repro import build_omega_system, IntermittentRotatingStarScenario
>>> scenario = IntermittentRotatingStarScenario(n=5, t=2, center=0, seed=1)
>>> system = build_omega_system(n=5, t=2, scenario=scenario, seed=1)
>>> system.run_until(600.0)
>>> sorted({p.algorithm.leader() for p in system.alive_shells()})
[0]

Service layer
-------------

A sharded key-value store: each shard is an independent Omega+consensus group,
all multiplexed on one virtual clock; clients address keys, commands carry
``(client_id, seq)`` identities and are applied exactly once.

>>> from repro import Command, build_sharded_service
>>> service = build_sharded_service(num_shards=4, n=3, t=1, seed=3, batch_size=8)
>>> service.submit(Command.put("alice", 1, "greeting", "hello"))
3
>>> service.run_until(60.0)  # doctest: +SKIP
>>> service.is_consistent()  # doctest: +SKIP
True
"""

from repro.core import (
    Alive,
    Environment,
    Figure1Omega,
    Figure2Omega,
    Figure3Omega,
    FgOmega,
    LeaderOracle,
    Message,
    OmegaConfig,
    Process,
    Suspicion,
)
from repro.assumptions import (
    AsynchronousAdversaryScenario,
    CombinedMrtScenario,
    EventualTMovingSourceScenario,
    EventualTSourceScenario,
    GrowingStarScenario,
    IntermittentRotatingStarScenario,
    MessagePatternScenario,
    Scenario,
)
from repro.simulation import (
    CorruptLink,
    Crash,
    CrashSchedule,
    DelayModel,
    EventScheduler,
    FaultPlan,
    LinkFault,
    Network,
    PartitionHeal,
    PartitionStart,
    Recover,
    SimProcessShell,
    SlowProcess,
    System,
    SystemConfig,
    UniformDelay,
)
from repro.analysis import (
    ExperimentResult,
    LeaderPoller,
    MessageStats,
    ServiceSummary,
    run_omega_experiment,
    summarize_service,
)
from repro.consensus import Batch, Command
from repro.storage import StableStorage, StableStore, WriteCostModel
from repro.service import (
    ClosedLoopClient,
    KeyValueStore,
    ServiceReplica,
    ShardedService,
    StateMachine,
    Workload,
    build_sharded_service,
    start_clients,
    uniform_workload,
    zipfian_workload,
)
from repro.system_builders import build_omega_system, build_consensus_system

__version__ = "1.0.0"

__all__ = [
    # core
    "Alive",
    "Environment",
    "Figure1Omega",
    "Figure2Omega",
    "Figure3Omega",
    "FgOmega",
    "LeaderOracle",
    "Message",
    "OmegaConfig",
    "Process",
    "Suspicion",
    # assumptions
    "AsynchronousAdversaryScenario",
    "CombinedMrtScenario",
    "EventualTMovingSourceScenario",
    "EventualTSourceScenario",
    "GrowingStarScenario",
    "IntermittentRotatingStarScenario",
    "MessagePatternScenario",
    "Scenario",
    # simulation
    "CorruptLink",
    "Crash",
    "CrashSchedule",
    "DelayModel",
    "EventScheduler",
    "FaultPlan",
    "LinkFault",
    "Network",
    "PartitionHeal",
    "PartitionStart",
    "Recover",
    "SimProcessShell",
    "SlowProcess",
    "System",
    "SystemConfig",
    "UniformDelay",
    # analysis
    "ExperimentResult",
    "LeaderPoller",
    "MessageStats",
    "ServiceSummary",
    "run_omega_experiment",
    "summarize_service",
    # storage
    "StableStorage",
    "StableStore",
    "WriteCostModel",
    # service
    "Batch",
    "ClosedLoopClient",
    "Command",
    "KeyValueStore",
    "ServiceReplica",
    "ShardedService",
    "StateMachine",
    "Workload",
    "build_sharded_service",
    "start_clients",
    "uniform_workload",
    "zipfian_workload",
    # builders
    "build_omega_system",
    "build_consensus_system",
    # meta
    "__version__",
]
