"""Baseline 2 — timer-driven accusation Omega (eventual t-source style).

A round-based construction in the spirit of the eventual-t-source algorithms of
Aguilera, Delporte-Gallet, Fauconnier & Toueg [2]: every process broadcasts
``HEARTBEAT(rn)`` rounds; a receiver that has not heard round ``rn`` from some
process by the time its (adaptive) round timer expires accuses that process; a
process whose accusation count reaches ``n - t`` for the same round has its counter
incremented; the process with the lexicographically smallest ``(counter, id)`` is
trusted.

Differences with the paper's Figure 1-3 algorithm (these are the point of the
baseline):

* the receiving round is closed purely by the timer — there is **no** "wait for
  ``n - t`` ALIVE messages" gate, hence no way to benefit from *winning* messages;
* there is no line-``*`` round-window filtering, hence no tolerance for an
  *intermittent* star;
* there is no line-``**`` minimality test, hence unbounded counters and timeouts.

Consequently it stabilises under the eventual t-source and t-moving-source
scenarios (the timely star keeps the centre quorum-free once its adaptive timeout
exceeds δ) but fails under the message-pattern scenario with growing winning delays
and under the rotating-persecution scenario, where the paper's algorithm succeeds.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.baselines.messages import Accusation, Heartbeat
from repro.core.interfaces import Environment, LeaderOracle, Message, Process, TimerHandle
from repro.core.state import lexicographic_min
from repro.util.validation import require_positive, validate_process_count

_HEARTBEAT_TIMER = "heartbeat"
_ROUND_TIMER = "round"


class TimerQuorumOmega(Process, LeaderOracle):
    """Timer-only, quorum-accusation Omega baseline."""

    variant_name = "baseline-t-source"

    def __init__(
        self,
        pid: int,
        n: int,
        t: int,
        heartbeat_period: float = 1.0,
        initial_timeout: float = 3.0,
        timeout_unit: float = 1.0,
        config: Optional[object] = None,
    ) -> None:
        validate_process_count(n, t)
        require_positive(heartbeat_period, "heartbeat_period")
        require_positive(timeout_unit, "timeout_unit")
        self.pid = pid
        self.n = n
        self.t = t
        self.alpha = n - t
        self.heartbeat_period = heartbeat_period
        self.initial_timeout = initial_timeout
        self.timeout_unit = timeout_unit

        self.send_round = 0
        self.recv_round = 1
        self.counters: Dict[int, int] = {other: 0 for other in range(n)}
        self.received: Dict[int, Set[int]] = {}
        self.accusations: Dict[int, Dict[int, int]] = {}
        self.leader_history = []

    # ------------------------------------------------------------------ oracle --
    def leader(self) -> int:
        """Process with the lexicographically smallest ``(counter, id)``."""
        return lexicographic_min(self.counters)

    # ------------------------------------------------------------------ lifecycle --
    def on_start(self, env: Environment) -> None:
        self._broadcast_heartbeat(env)
        env.set_timer(self.heartbeat_period, _HEARTBEAT_TIMER)
        env.set_timer(self.initial_timeout, _ROUND_TIMER)
        self._record_leader(env)

    def on_timer(self, env: Environment, timer: TimerHandle) -> None:
        if timer.name == _HEARTBEAT_TIMER:
            self._broadcast_heartbeat(env)
            env.set_timer(self.heartbeat_period, _HEARTBEAT_TIMER)
        elif timer.name == _ROUND_TIMER:
            self._close_round(env)
        else:
            raise ValueError(f"unknown timer {timer.name!r}")

    def on_message(self, env: Environment, sender: int, message: Message) -> None:
        if isinstance(message, Heartbeat):
            for pid, value in message.counters:
                if value > self.counters.get(pid, 0):
                    self.counters[pid] = value
            if message.rn >= self.recv_round:
                self.received.setdefault(message.rn, {self.pid}).add(sender)
        elif isinstance(message, Accusation):
            self._on_accusation(message)
        else:
            raise TypeError(f"baseline-t-source received unexpected {message!r}")
        self._record_leader(env)

    # ------------------------------------------------------------------ internals --
    def _broadcast_heartbeat(self, env: Environment) -> None:
        self.send_round += 1
        snapshot = tuple(sorted(self.counters.items()))
        env.broadcast(Heartbeat(rn=self.send_round, counters=snapshot), include_self=False)

    def _close_round(self, env: Environment) -> None:
        rn = self.recv_round
        received = self.received.get(rn, {self.pid})
        suspects = frozenset(pid for pid in range(self.n) if pid not in received)
        env.broadcast(Accusation(rn=rn, suspects=suspects), include_self=True)
        self.received.pop(rn, None)
        self.recv_round = rn + 1
        timeout = self.initial_timeout + self.timeout_unit * max(self.counters.values())
        env.set_timer(timeout, _ROUND_TIMER)

    def _on_accusation(self, message: Accusation) -> None:
        table = self.accusations.setdefault(message.rn, {})
        for suspect in message.suspects:
            count = table.get(suspect, 0) + 1
            table[suspect] = count
            if count == self.alpha:
                self.counters[suspect] = self.counters[suspect] + 1

    def _record_leader(self, env: Environment) -> None:
        current = self.leader()
        if not self.leader_history or self.leader_history[-1][1] != current:
            self.leader_history.append((env.now, current))
            env.log("leader_change", leader=current)
