"""Baseline Omega constructions from the related work (for coverage comparisons).

Each baseline is sound under the assumption its original publication targets and is
used by experiment E6 to measure the coverage gap the paper's algorithm closes:

* :class:`StableLeaderOmega` — heartbeat + adaptive per-link timeouts
  (eventually-timely-links style, [14]);
* :class:`TimerQuorumOmega` — round/accusation quorums driven purely by timers
  (eventual t-source style, [2]);
* :class:`QueryResponseOmega` — time-free query/response counting
  (message-pattern style, [16]).

The implementations are documented simplifications "in the style of" the cited
algorithms (see each module's docstring and DESIGN.md); they are not line-by-line
reproductions of those papers.
"""

from repro.baselines.heartbeat import StableLeaderOmega
from repro.baselines.message_pattern import QueryResponseOmega
from repro.baselines.messages import Accusation, Heartbeat, LoserReport, Query, Response
from repro.baselines.t_source import TimerQuorumOmega

__all__ = [
    "Accusation",
    "Heartbeat",
    "LoserReport",
    "Query",
    "QueryResponseOmega",
    "Response",
    "StableLeaderOmega",
    "TimerQuorumOmega",
]
