"""Baseline 1 — heartbeat Omega with per-link adaptive timeouts.

This is the classical eventually-timely-links construction (in the spirit of
Larrea, Fernández & Arévalo [14] and of the ``Omega`` modules used with Paxos):
every process broadcasts heartbeats; every process watches every other process with
an adaptive timeout and trusts the smallest non-suspected identifier.

Soundness requires the output links of the eventually elected process (in practice:
of the smallest correct identifier) to be eventually timely towards **every** correct
process.  The construction has no notion of quorums, winning messages or rotating
sets, so a single receiver that keeps timing out on the smallest correct process —
e.g. under the rotating-persecution scenario, where every sender's delays grow
without bound for ever-longer stretches — keeps demoting it and the output never
stabilises.  That is exactly the coverage gap experiment E6 measures.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.baselines.messages import Heartbeat
from repro.core.interfaces import Environment, LeaderOracle, Message, Process, TimerHandle
from repro.util.validation import require_positive, validate_process_count

_HEARTBEAT_TIMER = "heartbeat"
_CHECK_TIMER = "check"


class StableLeaderOmega(Process, LeaderOracle):
    """Heartbeat-and-timeout Omega (all-timely-links style baseline).

    Parameters
    ----------
    pid, n, t:
        Usual system parameters (``t`` is unused by the algorithm itself but kept
        for a uniform constructor signature across algorithms).
    heartbeat_period:
        Period between two heartbeat broadcasts.
    initial_timeout:
        Initial per-process timeout.
    timeout_increment:
        Additive increase applied to a process's timeout after a false suspicion.
    check_period:
        How often deadlines are (re-)evaluated.
    """

    variant_name = "baseline-heartbeat"

    def __init__(
        self,
        pid: int,
        n: int,
        t: int,
        heartbeat_period: float = 1.0,
        initial_timeout: float = 2.0,
        timeout_increment: float = 1.0,
        check_period: float = 0.5,
        config: Optional[object] = None,
    ) -> None:
        validate_process_count(n, t)
        require_positive(heartbeat_period, "heartbeat_period")
        require_positive(initial_timeout, "initial_timeout")
        require_positive(check_period, "check_period")
        self.pid = pid
        self.n = n
        self.t = t
        self.heartbeat_period = heartbeat_period
        self.timeout_increment = timeout_increment
        self.check_period = check_period
        self.sequence = 0
        self.timeouts: Dict[int, float] = {
            other: initial_timeout for other in range(n) if other != pid
        }
        self.deadlines: Dict[int, float] = {}
        self.suspected: Set[int] = set()
        #: Total number of (false) suspicions, for reporting.
        self.false_suspicions = 0
        self.leader_history = []

    # ------------------------------------------------------------------ oracle --
    def leader(self) -> int:
        """Smallest identifier currently not suspected (self is never suspected)."""
        candidates = [pid for pid in range(self.n) if pid == self.pid or pid not in self.suspected]
        return min(candidates)

    # ------------------------------------------------------------------ lifecycle --
    def on_start(self, env: Environment) -> None:
        for other in self.timeouts:
            self.deadlines[other] = env.now + self.timeouts[other]
        self._broadcast_heartbeat(env)
        env.set_timer(self.heartbeat_period, _HEARTBEAT_TIMER)
        env.set_timer(self.check_period, _CHECK_TIMER)
        self._record_leader(env)

    def on_timer(self, env: Environment, timer: TimerHandle) -> None:
        if timer.name == _HEARTBEAT_TIMER:
            self._broadcast_heartbeat(env)
            env.set_timer(self.heartbeat_period, _HEARTBEAT_TIMER)
        elif timer.name == _CHECK_TIMER:
            self._check_deadlines(env)
            env.set_timer(self.check_period, _CHECK_TIMER)
        else:
            raise ValueError(f"unknown timer {timer.name!r}")

    def on_message(self, env: Environment, sender: int, message: Message) -> None:
        if not isinstance(message, Heartbeat):
            raise TypeError(f"baseline-heartbeat received unexpected {message!r}")
        if sender in self.suspected:
            # False suspicion: rehabilitate the sender and give it more slack.
            self.suspected.discard(sender)
            self.timeouts[sender] += self.timeout_increment
            self.false_suspicions += 1
        self.deadlines[sender] = env.now + self.timeouts[sender]
        self._record_leader(env)

    # ------------------------------------------------------------------ internals --
    def _broadcast_heartbeat(self, env: Environment) -> None:
        self.sequence += 1
        env.broadcast(Heartbeat(rn=self.sequence), include_self=False)

    def _check_deadlines(self, env: Environment) -> None:
        for other, deadline in self.deadlines.items():
            if other not in self.suspected and env.now > deadline:
                self.suspected.add(other)
        self._record_leader(env)

    def _record_leader(self, env: Environment) -> None:
        current = self.leader()
        if not self.leader_history or self.leader_history[-1][1] != current:
            self.leader_history.append((env.now, current))
            env.log("leader_change", leader=current)
