"""Baseline 3 — time-free query/response Omega (message-pattern style).

A construction in the spirit of Mostéfaoui, Mourgaya & Raynal [16]: it uses **no
timer whatsoever**.  Every process periodically broadcasts a query; a query
terminates when ``n - t`` responses (counting the querier itself) have been
received; the processes whose responses were not among those first ``n - t`` are the
query's *losers*.  Each terminated query is reported; when ``n - t`` processes
report the same process as a loser for their query of the same index, that process's
counter is incremented.  The trusted process is the lexicographically smallest
``(counter, id)``.

Because the construction is time-free it keeps working when delays grow without
bound, provided the message-pattern assumption holds (a fixed star whose centre's
responses are always winning at the points).  Conversely it cannot exploit timely
links that are *not* winning — the strict-t-source scenario of experiment E6 — while
the paper's algorithm exploits both properties.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.baselines.messages import LoserReport, Query, Response
from repro.core.interfaces import Environment, LeaderOracle, Message, Process, TimerHandle
from repro.core.state import lexicographic_min
from repro.util.validation import require_positive, validate_process_count

_QUERY_TIMER = "query"


class QueryResponseOmega(Process, LeaderOracle):
    """Query/response (time-free) Omega baseline."""

    variant_name = "baseline-message-pattern"

    def __init__(
        self,
        pid: int,
        n: int,
        t: int,
        query_period: float = 1.0,
        config: Optional[object] = None,
    ) -> None:
        validate_process_count(n, t)
        require_positive(query_period, "query_period")
        self.pid = pid
        self.n = n
        self.t = t
        self.alpha = n - t
        self.query_period = query_period

        self.query_number = 0
        self.counters: Dict[int, int] = {other: 0 for other in range(n)}
        #: Responders of the currently open queries: query number -> set of pids.
        self.responders: Dict[int, Set[int]] = {}
        #: Queries that already terminated (their losers were reported).
        self.terminated: Set[int] = set()
        #: Loser reports: query index -> suspect -> number of reporting processes.
        self.reports: Dict[int, Dict[int, int]] = {}
        self.leader_history = []

    # ------------------------------------------------------------------ oracle --
    def leader(self) -> int:
        """Process with the lexicographically smallest ``(counter, id)``."""
        return lexicographic_min(self.counters)

    # ------------------------------------------------------------------ lifecycle --
    def on_start(self, env: Environment) -> None:
        self._broadcast_query(env)
        env.set_timer(self.query_period, _QUERY_TIMER)
        self._record_leader(env)

    def on_timer(self, env: Environment, timer: TimerHandle) -> None:
        if timer.name != _QUERY_TIMER:
            raise ValueError(f"unknown timer {timer.name!r}")
        self._broadcast_query(env)
        env.set_timer(self.query_period, _QUERY_TIMER)

    def on_message(self, env: Environment, sender: int, message: Message) -> None:
        if isinstance(message, Query):
            snapshot = tuple(sorted(self.counters.items()))
            env.send(sender, Response(rn=message.rn, counters=snapshot))
        elif isinstance(message, Response):
            self._merge_counters(message.counters)
            self._on_response(env, sender, message.rn)
        elif isinstance(message, LoserReport):
            self._on_report(message)
        else:
            raise TypeError(f"baseline-message-pattern received unexpected {message!r}")
        self._record_leader(env)

    # ------------------------------------------------------------------ internals --
    def _broadcast_query(self, env: Environment) -> None:
        self.query_number += 1
        # The querier is an implicit (instantaneous) responder to its own query.
        self.responders[self.query_number] = {self.pid}
        env.broadcast(Query(rn=self.query_number), include_self=False)

    def _merge_counters(self, counters) -> None:
        for pid, value in counters:
            if value > self.counters.get(pid, 0):
                self.counters[pid] = value

    def _on_response(self, env: Environment, sender: int, query_number: int) -> None:
        if query_number in self.terminated:
            return
        responders = self.responders.setdefault(query_number, {self.pid})
        responders.add(sender)
        if len(responders) >= self.alpha:
            losers = frozenset(
                pid for pid in range(self.n) if pid not in responders
            )
            self.terminated.add(query_number)
            self.responders.pop(query_number, None)
            env.broadcast(LoserReport(rn=query_number, losers=losers), include_self=True)

    def _on_report(self, message: LoserReport) -> None:
        table = self.reports.setdefault(message.rn, {})
        for loser in message.losers:
            count = table.get(loser, 0) + 1
            table[loser] = count
            if count == self.alpha:
                self.counters[loser] = self.counters[loser] + 1

    def _record_leader(self, env: Environment) -> None:
        current = self.leader()
        if not self.leader_history or self.leader_history[-1][1] != current:
            self.leader_history.append((env.now, current))
            env.log("leader_change", leader=current)
