"""Messages used by the baseline Omega algorithms.

The field carrying the heartbeat / query sequence number is deliberately named
``rn`` so the scenario delay models of :mod:`repro.assumptions` apply the same
per-round constraints (timely / winning / slow) to the baselines' traffic as they
apply to the paper's ``ALIVE`` messages — this is what makes the coverage
comparison of experiment E6 apples-to-apples.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Tuple

from repro.core.interfaces import Message


@dataclasses.dataclass(frozen=True)
class Heartbeat(Message):
    """Periodic liveness beacon carrying the sender's counter array (gossip)."""

    rn: int
    counters: Tuple[Tuple[int, int], ...] = ()

    @property
    def tag(self) -> str:
        return "HEARTBEAT"


@dataclasses.dataclass(frozen=True)
class Accusation(Message):
    """Quorum-style accusation: *suspects* missed heartbeat round ``rn``."""

    rn: int
    suspects: FrozenSet[int]

    @property
    def tag(self) -> str:
        return "ACCUSATION"


@dataclasses.dataclass(frozen=True)
class Query(Message):
    """Query number ``rn`` of the sender (message-pattern baseline)."""

    rn: int

    @property
    def tag(self) -> str:
        return "QUERY"


@dataclasses.dataclass(frozen=True)
class Response(Message):
    """Response to the destination's query ``rn``, carrying gossiped counters."""

    rn: int
    counters: Tuple[Tuple[int, int], ...] = ()

    @property
    def tag(self) -> str:
        return "RESPONSE"


@dataclasses.dataclass(frozen=True)
class LoserReport(Message):
    """The sender's query ``rn`` terminated without responses from *losers*."""

    rn: int
    losers: FrozenSet[int]

    @property
    def tag(self) -> str:
        return "LOSER_REPORT"
