"""Structure-aware mutation of fault plans.

Mutators operate on the *event list* of a plan, never on raw bytes: they
splice chunks between plans, drop and retime events, perturb loss/corruption
probabilities, move topology events to hover around observed leader changes
(the feedback loop's most valuable signal — the amnesia family of bugs lives
exactly there) and insert fresh events drawn from the full fault vocabulary.

Every candidate is re-validated through ``FaultPlan.validate`` before it
leaves the engine — the crash budget (never more than ``t`` down), pid
ranges, crash/recover pairing and, in admission-checked campaigns, the
quorum-amnesia check all hold for every mutant, so the executor never sees a
malformed plan and a storage-off campaign can choose to stay within the
amnesia-safe envelope.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.simulation.faults import (
    CorruptLink,
    Crash,
    FaultEvent,
    FaultPlan,
    LinkFault,
    PartitionHeal,
    PartitionStart,
    Recover,
    SlowProcess,
)
from repro.util.rng import RandomSource

#: Hard cap on mutant size — keeps plans readable and minimization cheap.
MAX_EVENTS = 32


def _replace_time(event: FaultEvent, time: float, horizon: float) -> FaultEvent:
    """Move *event* to *time* (clamped into ``[0, horizon]``), shifting its
    ``until`` window along when it has one so the window length survives."""
    time = min(max(0.0, time), horizon)
    until = getattr(event, "until", None)
    if until is not None:
        window = max(0.5, until - event.time)
        return dataclasses.replace(event, time=time, until=time + window)
    return dataclasses.replace(event, time=time)


class MutationEngine:
    """Draws validated mutants of a parent plan.

    Parameters
    ----------
    n, t:
        System parameters every mutant must validate against.
    horizon:
        Upper bound for event times (mutants never act after the run ends).
    require_quorum_memory:
        When True, mutants that would admit quorum amnesia (enough restarts
        to cover a quorum intersection, see ``FaultPlan.amnesia_hazards``)
        are rejected at validation — the admission mode of storage-off
        campaigns that hunt for *other* bugs.
    lease_duration:
        When the campaign's spec runs the lease read path, its lease term.
        Arms the lease-expiry mutator, which retimes partitions and link
        faults to straddle the moment an observed leader change's lease runs
        out — the razor-edge schedules where a stale leader is still inside
        (or just past) its term.  ``None`` (the default) keeps the mutator
        pool identical to the leases-off engine.
    """

    def __init__(
        self,
        n: int,
        t: int,
        horizon: float = 100.0,
        require_quorum_memory: bool = False,
        max_tries: int = 16,
        lease_duration: Optional[float] = None,
    ) -> None:
        self.n = n
        self.t = t
        self.horizon = horizon
        self.require_quorum_memory = require_quorum_memory
        self.max_tries = max_tries
        self.lease_duration = lease_duration
        mutators = [
            self._drop_event,
            self._retime_event,
            self._retime_to_leader_change,
            self._perturb_probability,
            self._splice_from_donor,
            self._insert_crash_recover,
            self._insert_link_fault,
            self._insert_corruption,
            self._insert_partition,
            self._insert_slowdown,
        ]
        if lease_duration is not None:
            mutators.append(self._retime_to_lease_expiry)
        self._mutators = tuple(mutators)

    # ------------------------------------------------------------------ entry point --
    def mutate(
        self,
        plan: FaultPlan,
        rng: RandomSource,
        donors: Sequence[FaultPlan] = (),
        leader_change_times: Sequence[float] = (),
    ) -> Optional[FaultPlan]:
        """Return one validated mutant of *plan*, or None when every draw of
        this rng failed validation (rare; callers simply skip the slot)."""
        for _ in range(self.max_tries):
            mutator = rng.choice(self._mutators)
            events = list(plan.events)
            try:
                candidate = mutator(events, rng, donors, leader_change_times)
            except ValueError:
                continue  # the event constructor itself refused the draw
            if candidate is None or not 0 < len(candidate) <= MAX_EVENTS:
                continue
            mutant = FaultPlan(candidate)
            try:
                mutant.validate(
                    self.n, self.t, require_quorum_memory=self.require_quorum_memory
                )
            except ValueError:
                continue
            return mutant
        return None

    # ------------------------------------------------------------------ mutators --
    def _drop_event(self, events, rng, donors, changes):
        if not events:
            return None
        victim = rng.randint(0, len(events) - 1)
        dropped = events[victim]
        del events[victim]
        # Dropping one half of a crash/recover pair rarely validates; drop the
        # partner too so the mutation usually lands.
        if isinstance(dropped, (Crash, Recover)):
            partner_cls = Recover if isinstance(dropped, Crash) else Crash
            partners = [
                i
                for i, event in enumerate(events)
                if isinstance(event, partner_cls) and event.pid == dropped.pid
            ]
            if partners:
                del events[rng.choice(partners)]
        return events

    def _retime_event(self, events, rng, donors, changes):
        if not events:
            return None
        index = rng.randint(0, len(events) - 1)
        jitter = rng.uniform(-6.0, 6.0)
        events[index] = _replace_time(
            events[index], events[index].time + jitter, self.horizon
        )
        return events

    def _retime_to_leader_change(self, events, rng, donors, changes):
        """Aim a topology or crash event at an observed leader change."""
        if not events or not changes:
            return None
        index = rng.randint(0, len(events) - 1)
        target = rng.choice(list(changes)) + rng.uniform(-3.0, 3.0)
        moved = _replace_time(events[index], target, self.horizon)
        # Keep crash/recover pairs ordered: shift the partner by the same delta.
        if isinstance(events[index], (Crash, Recover)):
            delta = moved.time - events[index].time
            pid = events[index].pid
            for i, event in enumerate(events):
                if i != index and isinstance(event, (Crash, Recover)) and event.pid == pid:
                    events[i] = _replace_time(event, event.time + delta, self.horizon)
        events[index] = moved
        return events

    def _retime_to_lease_expiry(self, events, rng, donors, changes):
        """Straddle a lease-expiry instant with a partition or link fault.

        A leader elected around an observed leader change holds its lease for
        ``lease_duration`` past each renewal; the schedules worth probing
        start isolating it *before* the term runs out and heal *after* — the
        window in which a stale leader still believes in its lease while the
        other side elects a successor.  This mutator moves an existing
        partition/link event so its window brackets ``change +
        lease_duration`` with small jitter on both ends.
        """
        assert self.lease_duration is not None
        candidates = [
            i
            for i, event in enumerate(events)
            if isinstance(event, (PartitionStart, LinkFault))
        ]
        if not candidates or not changes:
            return None
        index = rng.choice(candidates)
        expiry = rng.choice(list(changes)) + self.lease_duration
        start = expiry - rng.uniform(0.5, 0.9 * self.lease_duration)
        moved = _replace_time(events[index], start, self.horizon)
        if isinstance(moved, PartitionStart):
            # Drag the matching heal past the expiry so the isolation covers it.
            heals = [
                i for i, event in enumerate(events) if isinstance(event, PartitionHeal)
            ]
            if heals:
                heal_at = expiry + rng.uniform(1.0, 6.0)
                heal_index = rng.choice(heals)
                events[heal_index] = _replace_time(
                    events[heal_index], heal_at, self.horizon
                )
        elif getattr(moved, "until", None) is not None:
            until = min(expiry + rng.uniform(1.0, 6.0), self.horizon)
            if until > moved.time:
                moved = dataclasses.replace(moved, until=until)
        events[index] = moved
        return events

    def _perturb_probability(self, events, rng, donors, changes):
        candidates = [
            i for i, event in enumerate(events) if isinstance(event, (LinkFault, CorruptLink))
        ]
        if not candidates:
            return None
        index = rng.choice(candidates)
        event = events[index]
        probability = round(rng.uniform(0.05, 1.0), 3)
        if isinstance(event, CorruptLink):
            events[index] = dataclasses.replace(event, probability=probability)
        else:
            events[index] = dataclasses.replace(
                event, block=False, loss_probability=probability
            )
        return events

    def _splice_from_donor(self, events, rng, donors, changes):
        pool = [donor for donor in donors if len(donor.events) > 0]
        if not pool:
            return None
        donor = rng.choice(pool)
        chunk_len = rng.randint(1, min(3, len(donor.events)))
        start = rng.randint(0, len(donor.events) - chunk_len)
        events.extend(donor.events[start : start + chunk_len])
        return events

    def _insert_crash_recover(self, events, rng, donors, changes):
        pid = rng.randint(0, self.n - 1)
        down_at = rng.uniform(1.0, self.horizon * 0.7)
        downtime = rng.uniform(2.0, 10.0)
        events.append(Crash(time=down_at, pid=pid))
        events.append(
            Recover(time=min(down_at + downtime, self.horizon), pid=pid)
        )
        return events

    def _insert_link_fault(self, events, rng, donors, changes):
        sender = rng.randint(0, self.n - 1)
        dest = (sender + rng.randint(1, self.n - 1)) % self.n
        start = rng.uniform(1.0, self.horizon * 0.8)
        if rng.random() < 0.5:
            fault = LinkFault(
                time=start,
                sender=sender,
                dest=dest,
                block=True,
                until=start + rng.uniform(2.0, 20.0),
            )
        else:
            fault = LinkFault(
                time=start,
                sender=sender,
                dest=dest,
                loss_probability=round(rng.uniform(0.1, 0.9), 3),
                until=start + rng.uniform(5.0, 25.0),
            )
        events.append(fault)
        return events

    def _insert_corruption(self, events, rng, donors, changes):
        sender = rng.randint(0, self.n - 1)
        dest = (sender + rng.randint(1, self.n - 1)) % self.n
        start = rng.uniform(1.0, self.horizon * 0.8)
        events.append(
            CorruptLink(
                time=start,
                sender=sender,
                dest=dest,
                probability=round(rng.uniform(0.1, 1.0), 3),
                until=start + rng.uniform(5.0, 25.0),
            )
        )
        return events

    def _insert_partition(self, events, rng, donors, changes):
        isolated = rng.randint(0, self.n - 1)
        start = rng.uniform(1.0, self.horizon * 0.8)
        events.append(PartitionStart(time=start, groups=((isolated,),)))
        events.append(
            PartitionHeal(time=min(start + rng.uniform(4.0, 18.0), self.horizon))
        )
        return events

    def _insert_slowdown(self, events, rng, donors, changes):
        pid = rng.randint(0, self.n - 1)
        start = rng.uniform(1.0, self.horizon * 0.8)
        events.append(
            SlowProcess(
                time=start,
                pid=pid,
                factor=round(rng.uniform(1.5, 8.0), 2),
                until=start + rng.uniform(5.0, 20.0),
            )
        )
        return events


__all__ = ["MAX_EVENTS", "MutationEngine"]
