"""Seed corpus of serialized fault plans for the fuzzing campaign.

A corpus entry is one :class:`~repro.simulation.faults.FaultPlan` in its
``to_dict`` wire form plus the execution-feature metadata the feedback loop
learned about it (coverage features and the leader-change times the mutators
aim partitions at).  Entries are deduplicated by a canonical-JSON fingerprint
of the plan, so re-adding an equivalent plan — whatever the field order it was
loaded with — is a no-op.

The on-disk format is one JSON file per entry (``<name>.json``), loaded in
sorted name order, so a directory corpus is deterministic and diff-friendly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.simulation.faults import (
    Crash,
    FaultPlan,
    LinkFault,
    PartitionHeal,
    PartitionStart,
    Recover,
)

#: Wire-format version of corpus entry files.
CORPUS_VERSION = 1


def plan_fingerprint(plan_data: Dict) -> str:
    """Canonical fingerprint of a serialized plan (order-insensitive JSON)."""
    payload = json.dumps(plan_data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CorpusEntry:
    """One seed: a serialized plan plus learned execution metadata."""

    name: str
    plan_data: Dict
    notes: str = ""
    #: Coverage features of the entry's last execution (empty until executed).
    features: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Observed leader-change times of the entry's last execution — the
    #: mutation engine retimes partitions and crashes around these.
    leader_change_times: Tuple[float, ...] = ()

    def plan(self, n: Optional[int] = None, t: Optional[int] = None) -> FaultPlan:
        """Deserialize (and, with ``n``/``t``, validate) the entry's plan."""
        return FaultPlan.from_dict(self.plan_data, n=n, t=t)

    def fingerprint(self) -> str:
        return plan_fingerprint(self.plan_data)

    def to_dict(self) -> Dict:
        return {
            "version": CORPUS_VERSION,
            "name": self.name,
            "plan": self.plan_data,
            "notes": self.notes,
            "features": dict(self.features),
            "leader_change_times": list(self.leader_change_times),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CorpusEntry":
        if not isinstance(data, dict):
            raise ValueError(f"corpus entry must be a dict, got {data!r}")
        version = data.get("version", CORPUS_VERSION)
        if version != CORPUS_VERSION:
            raise ValueError(f"unsupported corpus entry version {version!r}")
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"corpus entry needs a non-empty name, got {name!r}")
        plan_data = data.get("plan")
        FaultPlan.from_dict(plan_data)  # validate the events eagerly on load
        return cls(
            name=name,
            plan_data=plan_data,
            notes=str(data.get("notes", "")),
            features={
                str(k): int(v) for k, v in dict(data.get("features", {})).items()
            },
            leader_change_times=tuple(
                float(x) for x in data.get("leader_change_times", ())
            ),
        )


class Corpus:
    """An ordered, fingerprint-deduplicated collection of seeds."""

    def __init__(self, entries: Iterable[CorpusEntry] = ()) -> None:
        self.entries: List[CorpusEntry] = []
        self._fingerprints: Dict[str, str] = {}  # fingerprint -> entry name
        self._names: set = set()
        for entry in entries:
            self.add(entry)

    def add(self, entry: CorpusEntry) -> bool:
        """Add *entry*; False when an equivalent plan (or name) is present."""
        fingerprint = entry.fingerprint()
        if fingerprint in self._fingerprints or entry.name in self._names:
            return False
        self.entries.append(entry)
        self._fingerprints[fingerprint] = entry.name
        self._names.add(entry.name)
        return True

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[CorpusEntry]:
        return iter(self.entries)

    def names(self) -> List[str]:
        return [entry.name for entry in self.entries]

    def get(self, name: str) -> Optional[CorpusEntry]:
        for entry in self.entries:
            if entry.name == name:
                return entry
        return None

    # ------------------------------------------------------------------ persistence --
    def save(self, directory: str) -> None:
        """Write one ``<name>.json`` per entry into *directory*."""
        os.makedirs(directory, exist_ok=True)
        for entry in self.entries:
            path = os.path.join(directory, f"{entry.name}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(entry.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")

    @classmethod
    def load(cls, directory: str) -> "Corpus":
        """Load every ``*.json`` entry of *directory*, in sorted name order."""
        corpus = cls()
        for filename in sorted(os.listdir(directory)):
            if not filename.endswith(".json"):
                continue
            with open(os.path.join(directory, filename), encoding="utf-8") as handle:
                corpus.add(CorpusEntry.from_dict(json.load(handle)))
        return corpus


# --------------------------------------------------------------------- seed plans --
def amnesia_witness_plan() -> FaultPlan:
    """The PR-5 quorum-amnesia witness, re-expressed as a fuzz corpus seed.

    Cut the first leader's outgoing links right after its accept round, then
    restart the two other acceptors back-to-back: without stable storage the
    promise quorum of the next leader is entirely amnesic and a second value
    gets decided for an already-decided position.  Under the real Omega-driven
    stack the leader change is an election rather than a script, so the
    restart window differs from the scripted witness's: the second acceptor
    must go down *within the catch-up repair window* (about one drive period)
    of the first one coming back, or the recovering replica re-learns the
    decided prefix from its peer and agreement survives.  The timing below is
    pinned empirically against the real stack (constant 0.5 delays,
    ``drive_period=2``): a 1.0 gap defeats the repair, a 2.0 gap does not.
    """
    return FaultPlan(
        [
            LinkFault(time=6.25, sender=0, dest=1, block=True),
            LinkFault(time=6.25, sender=0, dest=2, block=True),
            Crash(time=12.0, pid=1),
            Recover(time=16.0, pid=1),
            Crash(time=17.0, pid=2),
            Recover(time=21.0, pid=2),
        ]
    )


def lease_edge_plan(
    n: int, lease_duration: float = 6.0, leader_change_at: float = 20.0
) -> FaultPlan:
    """Partition the old leader across its lease-expiry edge.

    The lease read path's sharpest schedule: isolate the process most likely
    to be the established leader (pid 0 under constant delays) shortly before
    one of its lease terms would expire, and keep it isolated well past the
    expiry — long enough for the majority side to elect and lease a successor.
    A stale leader that kept serving reads past its term (the
    ``lease_validation=False`` hazard) is caught by the stale-read probe on
    exactly this shape; with validation on, the schedule must stay clean.
    """
    start = leader_change_at + 0.5 * lease_duration
    heal = leader_change_at + 3.0 * lease_duration
    return FaultPlan(
        [
            PartitionStart(time=start, groups=((0,),)),
            PartitionHeal(time=heal),
        ]
    )


def benign_seed_plans(n: int, t: int, horizon: float = 100.0) -> List[Tuple[str, FaultPlan]]:
    """Assumption-preserving starter seeds exercising each fault family."""
    from repro.simulation.faults import (
        CorruptLink,
        PartitionHeal,
        PartitionStart,
        SlowProcess,
    )

    third = horizon / 3.0
    plans: List[Tuple[str, FaultPlan]] = [
        ("benign-empty", FaultPlan.none()),
        (
            "benign-restart",
            FaultPlan([Crash(time=third, pid=n - 1), Recover(time=third + 6.0, pid=n - 1)]),
        ),
        (
            "benign-partition",
            FaultPlan(
                [
                    PartitionStart(time=third, groups=((n - 1,),)),
                    PartitionHeal(time=third + 10.0),
                ]
            ),
        ),
        (
            "benign-flaky-link",
            FaultPlan(
                [
                    LinkFault(
                        time=third,
                        sender=0,
                        dest=n - 1,
                        loss_probability=0.4,
                        until=third + 15.0,
                    )
                ]
            ),
        ),
        (
            "benign-corruption",
            FaultPlan(
                [
                    CorruptLink(
                        time=third,
                        sender=1 % n,
                        dest=0,
                        probability=0.5,
                        until=third + 15.0,
                    )
                ]
            ),
        ),
        (
            "benign-slow-process",
            FaultPlan(
                [SlowProcess(time=third, pid=0, factor=3.0, until=third + 12.0)]
            ),
        ),
    ]
    for _, plan in plans:
        plan.validate(n, t)
    return plans


def seed_corpus(
    n: int,
    t: int,
    horizon: float = 100.0,
    include_amnesia_witness: bool = True,
    include_lease_edge: bool = False,
    lease_duration: float = 6.0,
) -> Corpus:
    """The standard starting corpus: benign family seeds plus (for storage-off
    violation hunts) the quorum-amnesia witness and (for lease-enabled
    campaigns, ``include_lease_edge=True``) the lease-expiry-edge partition."""
    corpus = Corpus()
    for name, plan in benign_seed_plans(n, t, horizon=horizon):
        corpus.add(CorpusEntry(name=name, plan_data=plan.to_dict()))
    if include_lease_edge:
        edge = lease_edge_plan(n, lease_duration=lease_duration)
        edge.validate(n, t)
        corpus.add(
            CorpusEntry(
                name="lease-edge-partition",
                plan_data=edge.to_dict(),
                notes=(
                    "partitioned old leader still inside its lease term: the "
                    "isolation straddles a lease expiry so the majority side "
                    "re-elects while the stale leader's term runs out"
                ),
            )
        )
    if include_amnesia_witness and n == 3 and t == 1:
        witness = amnesia_witness_plan()
        witness.validate(n, t)
        corpus.add(
            CorpusEntry(
                name="amnesia-witness",
                plan_data=witness.to_dict(),
                notes=(
                    "PR-5 quorum-amnesia schedule: storage-less restarts around "
                    "a leader change can decide two values for one position"
                ),
            )
        )
    return corpus


__all__ = [
    "CORPUS_VERSION",
    "Corpus",
    "CorpusEntry",
    "amnesia_witness_plan",
    "benign_seed_plans",
    "lease_edge_plan",
    "plan_fingerprint",
    "seed_corpus",
]
