"""Coverage-guided fault-scenario fuzzing for the replicated service stack.

The subsystem closes a feedback loop over the fault-plan engine and the
service layer, the way a coverage-guided fuzzer closes one over a program:

* :mod:`~repro.fuzz.corpus` — serialized seed plans (``FaultPlan.to_dict``
  round-trip), deduplicated by canonical fingerprint, persisted one JSON file
  per entry;
* :mod:`~repro.fuzz.executor` — deterministic ``(spec, plan, seed)``
  executions of the *real* stack with invariant probes (per-position
  agreement, exactly-once sessions, digest convergence, durability of
  acknowledged writes) and a behavioural feature harvest;
* :mod:`~repro.fuzz.linearizability` — a real Wing–Gong checker validating
  recorded client histories against the key-value specification;
* :mod:`~repro.fuzz.coverage` — log2-bucketed feature coverage, the novelty
  signal that decides which mutants earn a corpus slot;
* :mod:`~repro.fuzz.mutators` — structure-aware plan mutation (splice, drop,
  retime around observed leader changes, probability perturbation), every
  mutant re-validated against the fault budget and the amnesia admission;
* :mod:`~repro.fuzz.minimize` — delta-debugging plus timing shrink, emitting
  deterministic regression tests from findings;
* :mod:`~repro.fuzz.campaign` — the multiprocessing campaign runner whose
  merged report is reproducible bit-for-bit across worker counts.
"""

from repro.fuzz.campaign import (
    CampaignConfig,
    CampaignReport,
    CampaignRunner,
    Finding,
    run_campaign,
)
from repro.fuzz.corpus import (
    Corpus,
    CorpusEntry,
    amnesia_witness_plan,
    benign_seed_plans,
    plan_fingerprint,
    seed_corpus,
)
from repro.fuzz.coverage import CoverageMap, bucket, signature
from repro.fuzz.executor import (
    ConstantDelayScenario,
    ExecutionResult,
    ScenarioSpec,
    Violation,
    check_invariants,
    harvest_features,
    run_scenario,
)
from repro.fuzz.linearizability import (
    LinearizabilityVerdict,
    apply_kv,
    check_history,
    sequential_history,
)
from repro.fuzz.minimize import (
    MinimizationResult,
    ddmin,
    emit_regression_test,
    minimize,
)
from repro.fuzz.mutators import MutationEngine

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "CampaignRunner",
    "ConstantDelayScenario",
    "Corpus",
    "CorpusEntry",
    "CoverageMap",
    "ExecutionResult",
    "Finding",
    "LinearizabilityVerdict",
    "MinimizationResult",
    "MutationEngine",
    "ScenarioSpec",
    "Violation",
    "amnesia_witness_plan",
    "apply_kv",
    "benign_seed_plans",
    "bucket",
    "check_history",
    "check_invariants",
    "ddmin",
    "emit_regression_test",
    "harvest_features",
    "minimize",
    "plan_fingerprint",
    "run_campaign",
    "run_scenario",
    "seed_corpus",
    "sequential_history",
    "signature",
]
