"""A real linearizability checker for recorded key-value client histories.

The service's agreement and digest probes compare *replicas* with each other;
linearizability is the stronger, client-facing contract: the completed
operations must be explainable as a single sequential execution of the
key-value specification in which every operation takes effect at some instant
between its invocation and its observed completion (Herlihy & Wing).  The
checker here is the classical Wing–Gong exhaustive search with two standard
optimisations:

* **Locality** — linearizability is compositional per object, and the
  key-value store's objects are its keys: a history is linearizable iff its
  per-key sub-histories are.  The search therefore never mixes keys, keeping
  the state space tiny even for long multi-key runs.
* **Memoised states** — the search caches ``(remaining operations, state)``
  configurations (Lowe's refinement of Wing–Gong), so permutations that reach
  the same configuration are explored once.

Soundness with the recorded histories of
:class:`~repro.service.clients.ClosedLoopClient`: ``completed_at`` is a poll
tick *at or after* the instant the operation took effect, so the recorded
interval contains the true one — widening intervals only admits more
linearizations and can never manufacture a violation.  Results recorded as
:data:`~repro.service.clients.RESULT_UNKNOWN` are treated as unconstrained.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.service.clients import RESULT_UNKNOWN, OperationRecord

#: Per-key specification state: ``(present, value)``.  ``present`` matters
#: because the store distinguishes an absent key from one holding ``None``
#: (``delete`` returns whether the key existed; ``get`` maps absent to None).
KeyState = Tuple[bool, object]

#: The initial state of every key.
EMPTY_KEY: KeyState = (False, None)


def apply_kv(state: KeyState, op: str, args: Tuple) -> Tuple[object, KeyState]:
    """The sequential key-value specification: ``(result, next state)``.

    Mirrors :class:`~repro.service.state_machine.KeyValueStore._execute`
    exactly — including the corner cases: ``cas`` compares against ``None``
    for an absent key, ``incr`` treats non-integer (and bool) values as 0.
    """
    present, value = state
    if op == "put":
        return "OK", (True, args[0])
    if op == "get":
        return (value if present else None), state
    if op == "delete":
        return present, EMPTY_KEY
    if op == "cas":
        expected, new = args
        current = value if present else None
        if current == expected:
            return True, (True, new)
        return False, state
    if op == "incr":
        delta = args[0] if args else 1
        current = value if present else 0
        base = current if isinstance(current, int) and not isinstance(current, bool) else 0
        result = base + delta
        return result, (True, result)
    raise ValueError(f"unknown operation {op!r}")


@dataclasses.dataclass(frozen=True)
class KeyVerdict:
    """Outcome of checking one key's sub-history."""

    key: str
    ok: bool
    operations: int
    #: Human-readable explanation when not ok (empty otherwise).
    reason: str = ""
    #: True when the state budget ran out before a verdict (treated as ok by
    #: :func:`check_history` — an inconclusive search is not a violation).
    exhausted: bool = False


@dataclasses.dataclass(frozen=True)
class LinearizabilityVerdict:
    """Outcome of checking a full multi-key history."""

    ok: bool
    operations: int
    keys_checked: int
    failures: Tuple[KeyVerdict, ...]
    inconclusive: Tuple[str, ...] = ()

    def describe(self) -> str:
        if self.ok:
            note = (
                f" ({len(self.inconclusive)} key(s) inconclusive)"
                if self.inconclusive
                else ""
            )
            return (
                f"linearizable: {self.operations} operation(s) over "
                f"{self.keys_checked} key(s){note}"
            )
        worst = self.failures[0]
        return f"NOT linearizable: key {worst.key!r} — {worst.reason}"


def _check_key(
    key: str, records: Sequence[OperationRecord], max_states: int
) -> KeyVerdict:
    """Wing–Gong search over one key's completed operations."""
    ops = sorted(
        records, key=lambda r: (r.invoked_at, r.completed_at, r.client_id, r.seq)
    )
    count = len(ops)
    if count == 0:
        return KeyVerdict(key=key, ok=True, operations=0)
    full = frozenset(range(count))
    seen = {(full, EMPTY_KEY)}
    stack: List[Tuple[frozenset, KeyState]] = [(full, EMPTY_KEY)]
    while stack:
        remaining, state = stack.pop()
        if not remaining:
            return KeyVerdict(key=key, ok=True, operations=count)
        # An operation may linearize first among `remaining` only if no other
        # remaining operation completed strictly before it was invoked.
        frontier = min(ops[i].completed_at for i in remaining)
        for i in sorted(remaining):
            op = ops[i]
            if op.invoked_at > frontier:
                continue
            result, next_state = apply_kv(state, op.op, op.args)
            if op.result != RESULT_UNKNOWN and op.result != result:
                continue
            configuration = (remaining - {i}, next_state)
            if configuration in seen:
                continue
            seen.add(configuration)
            stack.append(configuration)
            if len(seen) > max_states:
                return KeyVerdict(
                    key=key,
                    ok=True,
                    operations=count,
                    exhausted=True,
                    reason=f"state budget ({max_states}) exhausted",
                )
    sample = ", ".join(
        f"{op.op}({op.key}{',' if op.args else ''}"
        f"{','.join(map(repr, op.args))})->{op.result!r}"
        for op in ops[: min(6, count)]
    )
    return KeyVerdict(
        key=key,
        ok=False,
        operations=count,
        reason=(
            f"no linearization of {count} completed operation(s) matches the "
            f"key-value specification; first ops: {sample}"
        ),
    )


def check_history(
    records: Iterable[OperationRecord], max_states: int = 200_000
) -> LinearizabilityVerdict:
    """Check a merged multi-client history for linearizability.

    Splits the history per key (locality) and searches each sub-history for a
    valid linearization.  ``max_states`` bounds the memoised search per key;
    an exhausted key is reported as *inconclusive*, never as a violation.
    """
    by_key: Dict[str, List[OperationRecord]] = {}
    total = 0
    for record in records:
        by_key.setdefault(record.key, []).append(record)
        total += 1
    failures: List[KeyVerdict] = []
    inconclusive: List[str] = []
    for key in sorted(by_key):
        verdict = _check_key(key, by_key[key], max_states)
        if not verdict.ok:
            failures.append(verdict)
        elif verdict.exhausted:
            inconclusive.append(key)
    return LinearizabilityVerdict(
        ok=not failures,
        operations=total,
        keys_checked=len(by_key),
        failures=tuple(failures),
        inconclusive=tuple(inconclusive),
    )


def records_from_tuples(rows: Iterable[Tuple]) -> List[OperationRecord]:
    """Rebuild :class:`OperationRecord` objects from their stable tuple form."""
    return [
        OperationRecord(
            client_id=row[0],
            seq=row[1],
            op=row[2],
            key=row[3],
            args=tuple(row[4]),
            invoked_at=row[5],
            completed_at=row[6],
            result=row[7],
        )
        for row in rows
    ]


def sequential_history(
    operations: Sequence[Tuple[str, str, Tuple]],
    client_id: str = "seq-client",
) -> List[OperationRecord]:
    """Turn ``(op, key, args)`` triples into a non-overlapping spec-conforming
    history — each operation's result is computed from the specification and
    its interval strictly precedes the next one's.  By construction such a
    history is linearizable (the identity order linearizes it); property tests
    use this as the checker's positive oracle.
    """
    states: Dict[str, KeyState] = {}
    records: List[OperationRecord] = []
    for index, (op, key, args) in enumerate(operations):
        state = states.get(key, EMPTY_KEY)
        result, next_state = apply_kv(state, op, tuple(args))
        states[key] = next_state
        records.append(
            OperationRecord(
                client_id=client_id,
                seq=index + 1,
                op=op,
                key=key,
                args=tuple(args),
                invoked_at=float(2 * index),
                completed_at=float(2 * index + 1),
                result=result,
            )
        )
    return records


__all__ = [
    "EMPTY_KEY",
    "KeyState",
    "KeyVerdict",
    "LinearizabilityVerdict",
    "apply_kv",
    "check_history",
    "records_from_tuples",
    "sequential_history",
]
