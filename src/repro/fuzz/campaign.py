"""Coverage-guided fuzzing campaigns over fault scenarios.

The :class:`CampaignRunner` closes the loop around the pieces of this
package: execute corpus seeds, bucket their behavioural features
(:mod:`~repro.fuzz.coverage`), keep interesting mutants as new seeds
(:mod:`~repro.fuzz.mutators`), report invariant violations as findings and
shrink each finding to a minimal deterministic counterexample
(:mod:`~repro.fuzz.minimize`) with a ready-to-commit regression test.

**Determinism across worker counts.**  Executions are pure functions of
``(spec, plan)`` dictionaries, so they can run anywhere; what could diverge
is the *campaign state* (coverage map, corpus, findings) that decides the
next round's mutants.  The runner therefore generates each round's task batch
*before* executing it — every task's rng is derived as
``derive_seed(campaign seed, "task", round, slot)`` — and folds results back
in task order, never completion order.  A campaign with 8 workers, 1 worker
or an inline loop walks the identical sequence of corpus states and produces
findings with identical fingerprints; the worker pool only changes wall-clock
time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.executor import ExecutionResult, ScenarioSpec, run_scenario
from repro.fuzz.minimize import emit_regression_test, minimize
from repro.fuzz.mutators import MutationEngine
from repro.simulation.faults import FaultPlan
from repro.util.parallel import run_tasks
from repro.util.rng import RandomSource, derive_seed


def _execute_payload(payload: Dict) -> Dict:
    """Worker entry point: run one serialized task (must stay module-level and
    dict-in/dict-out so any multiprocessing start method can ship it)."""
    spec = ScenarioSpec.from_dict(payload["spec"])
    plan = FaultPlan.from_dict(payload["plan"])
    return run_scenario(spec, plan).to_dict()


@dataclasses.dataclass
class CampaignConfig:
    """Knobs of one campaign run."""

    spec: ScenarioSpec = dataclasses.field(default_factory=ScenarioSpec)
    seed: int = 0
    #: Total executions (mutation rounds stop when the budget is spent).
    max_executions: int = 200
    #: Tasks generated (and possibly executed concurrently) per round.
    round_size: int = 8
    #: Worker processes; 0 or 1 executes inline (same results, one process).
    workers: int = 0
    #: Reject mutants that admit quorum amnesia (storage-off campaigns that
    #: want to stay within the safe envelope set this; violation *hunts* and
    #: storage-on campaigns leave it off).
    require_quorum_memory: bool = False
    #: Adversary names cycled per task ("swap adversaries" mutation); None
    #: entries mean plan-only executions.
    adversaries: Tuple[Optional[str], ...] = (None,)
    #: Vary the service seed per task (workload/election diversity).  Off by
    #: default: one spec seed keeps findings trivially comparable.
    vary_exec_seed: bool = False
    #: Findings kept (deduplicated by violation kind).
    max_findings: int = 4
    #: Stop the campaign at the first finding (hunt mode).
    stop_on_first_finding: bool = False
    #: Oracle executions granted to each finding's minimization.
    minimize_budget: int = 100
    #: Environment-variable gate written into emitted regression tests.
    regression_skip_env: Optional[str] = None


@dataclasses.dataclass
class Finding:
    """One confirmed invariant violation, minimized and replayable."""

    kind: str
    detail: str
    parent: str  # corpus entry the violating plan descends from
    spec_data: Dict
    plan_data: Dict
    fingerprint: str
    minimized_plan_data: Optional[Dict] = None
    minimized_events: int = 0
    minimize_executions: int = 0
    regression_test: Optional[str] = None

    def spec(self) -> ScenarioSpec:
        return ScenarioSpec.from_dict(self.spec_data)

    def plan(self) -> FaultPlan:
        return FaultPlan.from_dict(self.plan_data)

    def minimized_plan(self) -> Optional[FaultPlan]:
        if self.minimized_plan_data is None:
            return None
        return FaultPlan.from_dict(self.minimized_plan_data)

    def replay(self) -> ExecutionResult:
        """Re-execute the finding's exact ``(spec, plan)`` pair."""
        return run_scenario(self.spec(), self.plan())

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "parent": self.parent,
            "spec": dict(self.spec_data),
            "plan": dict(self.plan_data),
            "fingerprint": self.fingerprint,
            "minimized_plan": self.minimized_plan_data,
            "minimized_events": self.minimized_events,
            "minimize_executions": self.minimize_executions,
        }


@dataclasses.dataclass
class CampaignReport:
    """Merged, reproducible summary of one campaign."""

    executions: int
    rounds: int
    corpus_size: int
    seeds_skipped: Tuple[str, ...]
    coverage_pairs: int
    coverage_signatures: int
    findings: Tuple[Finding, ...]
    violations_seen: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def describe(self) -> str:
        lines = [
            f"executions={self.executions} rounds={self.rounds} "
            f"corpus={self.corpus_size} coverage_pairs={self.coverage_pairs} "
            f"signatures={self.coverage_signatures}",
        ]
        if self.seeds_skipped:
            lines.append(f"seeds skipped by admission: {list(self.seeds_skipped)}")
        if not self.findings:
            lines.append("no invariant violations")
        for finding in self.findings:
            size = (
                f", minimized to {finding.minimized_events} event(s)"
                if finding.minimized_plan_data is not None
                else ""
            )
            lines.append(
                f"FINDING [{finding.kind}] from seed {finding.parent!r}{size}: "
                f"{finding.detail}"
            )
        return "\n".join(lines)


class CampaignRunner:
    """Runs one coverage-guided campaign to completion."""

    def __init__(self, config: CampaignConfig, corpus: Corpus) -> None:
        self.config = config
        self.corpus = corpus
        self.coverage = CoverageMap()
        admission = config.require_quorum_memory and not config.spec.stable_storage
        self.engine = MutationEngine(
            n=config.spec.n,
            t=config.spec.t,
            horizon=config.spec.horizon,
            require_quorum_memory=admission,
            # Lease-enabled campaigns arm the lease-expiry-edge mutator; with
            # leases off the mutator pool is identical to the seed engine's.
            lease_duration=(
                config.spec.lease_duration if config.spec.leases else None
            ),
        )
        self._admission = admission
        self._findings: List[Finding] = []
        self._seen_kinds: set = set()
        self._executions = 0
        self._violations_seen = 0
        self._rounds = 0
        self._skipped: List[str] = []

    # ------------------------------------------------------------------ task building --
    def _admit(self, entry: CorpusEntry) -> Optional[FaultPlan]:
        try:
            plan = entry.plan()
            plan.validate(
                self.config.spec.n,
                self.config.spec.t,
                require_quorum_memory=self._admission,
            )
        except ValueError:
            return None
        return plan

    def _task_spec(self, rng: RandomSource, slot_seed: int) -> ScenarioSpec:
        spec = self.config.spec
        adversary = rng.choice(list(self.config.adversaries))
        changes: Dict[str, object] = {}
        if adversary != spec.adversary:
            changes["adversary"] = adversary
        if self.config.vary_exec_seed:
            changes["seed"] = slot_seed % (2**31)
        return dataclasses.replace(spec, **changes) if changes else spec

    def _seed_round(self) -> List[Tuple[str, ScenarioSpec, FaultPlan]]:
        tasks = []
        for entry in self.corpus:
            plan = self._admit(entry)
            if plan is None:
                self._skipped.append(entry.name)
                continue
            tasks.append((entry.name, self.config.spec, plan))
        return tasks

    def _mutation_round(self, round_index: int) -> List[Tuple[str, ScenarioSpec, FaultPlan]]:
        entries = list(self.corpus)
        if not entries:
            return []
        # Recency bias: the newest third of the corpus is listed twice, so
        # fresh coverage gets extra mutation energy without starving seeds.
        recent = entries[-max(1, len(entries) // 3) :]
        weighted = entries + recent
        budget = min(
            self.config.round_size, self.config.max_executions - self._executions
        )
        tasks = []
        for slot in range(max(0, budget)):
            slot_seed = derive_seed(self.config.seed, "task", round_index, slot)
            rng = RandomSource(slot_seed)
            parent = rng.choice(weighted)
            parent_plan = self._admit(parent)
            if parent_plan is None:
                continue
            donors = [
                FaultPlan.from_dict(other.plan_data)
                for other in rng.sample(entries, min(2, len(entries)))
            ]
            mutant = self.engine.mutate(
                parent_plan,
                rng,
                donors=donors,
                leader_change_times=parent.leader_change_times,
            )
            if mutant is None:
                continue
            tasks.append((parent.name, self._task_spec(rng, slot_seed), mutant))
        return tasks

    # ------------------------------------------------------------------ execution --
    def _execute(
        self, tasks: Sequence[Tuple[str, ScenarioSpec, FaultPlan]]
    ) -> List[ExecutionResult]:
        payloads = [
            {"spec": spec.to_dict(), "plan": plan.to_dict()}
            for _, spec, plan in tasks
        ]
        raw = run_tasks(_execute_payload, payloads, workers=self.config.workers)
        return [ExecutionResult.from_dict(data) for data in raw]

    # ------------------------------------------------------------------ folding --
    def _fold(
        self,
        round_index: int,
        tasks: Sequence[Tuple[str, ScenarioSpec, FaultPlan]],
        results: Sequence[ExecutionResult],
    ) -> None:
        for slot, ((parent, spec, plan), result) in enumerate(zip(tasks, results)):
            self._executions += 1
            new_pairs, new_signature = self.coverage.observe(result.features)
            entry = self.corpus.get(parent)
            if round_index == 0 and entry is not None:
                # Seeds learn their own execution metadata in place.
                entry.features = dict(result.features)
                entry.leader_change_times = result.leader_change_times
            elif new_pairs or new_signature:
                self.corpus.add(
                    CorpusEntry(
                        name=f"gen{round_index}-{slot}",
                        plan_data=plan.to_dict(),
                        notes=f"mutant of {parent} (+{new_pairs} coverage pairs)",
                        features=dict(result.features),
                        leader_change_times=result.leader_change_times,
                    )
                )
            self._violations_seen += len(result.violations)
            for violation in result.violations:
                if violation.kind in self._seen_kinds:
                    continue
                if len(self._findings) >= self.config.max_findings:
                    break
                self._seen_kinds.add(violation.kind)
                self._findings.append(
                    Finding(
                        kind=violation.kind,
                        detail=violation.detail,
                        parent=parent,
                        spec_data=spec.to_dict(),
                        plan_data=plan.to_dict(),
                        fingerprint=result.fingerprint,
                    )
                )

    # ------------------------------------------------------------------ main loop --
    def run(self) -> CampaignReport:
        tasks = self._seed_round()
        round_index = 0
        while tasks:
            results = self._execute(tasks)
            self._fold(round_index, tasks, results)
            self._rounds += 1
            if self._findings and self.config.stop_on_first_finding:
                break
            if self._executions >= self.config.max_executions:
                break
            round_index += 1
            tasks = self._mutation_round(round_index)
        self._minimize_findings()
        return CampaignReport(
            executions=self._executions,
            rounds=self._rounds,
            corpus_size=len(self.corpus),
            seeds_skipped=tuple(self._skipped),
            coverage_pairs=self.coverage.pairs_seen,
            coverage_signatures=self.coverage.signatures_seen,
            findings=tuple(self._findings),
            violations_seen=self._violations_seen,
        )

    def _minimize_findings(self) -> None:
        if not self.config.minimize_budget:
            return
        for index, finding in enumerate(self._findings):
            outcome = minimize(
                finding.spec(),
                finding.plan(),
                target_kinds=(finding.kind,),
                budget=self.config.minimize_budget,
            )
            finding.minimized_plan_data = outcome.plan.to_dict()
            finding.minimized_events = outcome.minimized_events
            finding.minimize_executions = outcome.executions_used
            finding.regression_test = emit_regression_test(
                name=f"fuzz_{finding.kind.replace('-', '_')}_{index}",
                spec=finding.spec(),
                plan=outcome.plan,
                kinds=(finding.kind,),
                title=f"{finding.kind} violation found by fuzzing",
                skip_env=self.config.regression_skip_env,
            )


def run_campaign(config: CampaignConfig, corpus: Corpus) -> CampaignReport:
    """Convenience wrapper: build a runner and run it."""
    return CampaignRunner(config, corpus).run()


__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "CampaignRunner",
    "Finding",
    "run_campaign",
]
