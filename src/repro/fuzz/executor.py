"""Deterministic one-shot execution of a ``(spec, plan, seed)`` fuzz scenario.

:func:`run_scenario` is the campaign's measurement instrument: it builds a
real :class:`~repro.service.sharding.ShardedService` (actual Omega elections,
actual consensus, actual clients — no scripted oracles), injects the fault
plan, drives closed-loop clients that record timed operation histories, and
returns an :class:`ExecutionResult` carrying

* the **coverage features** the feedback loop buckets for novelty (leader
  changes, round resyncs, catch-up and snapshot-transfer activity, corruption
  rejections, recoveries, client retries, ...) — all read through the
  recovery-proof ``retired_counters`` path, so a restart can never shrink a
  feature mid-run;
* the **invariant verdicts**: per-position agreement across every replica
  incarnation, exactly-once session safety, digest-chain convergence of
  equally-advanced replicas, durability of acknowledged writes, and a real
  Wing–Gong linearizability check of the merged client history against the
  key-value specification;
* a **fingerprint** over features, violations, final digests and the full
  operation history.  The execution is a pure function of
  ``(spec, plan, spec.seed)``: equal inputs produce byte-identical
  fingerprints in any process, which is what makes findings replayable and
  campaigns worker-count-independent.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Tuple

from repro.assumptions.base import Scenario
from repro.assumptions.scenarios import IntermittentRotatingStarScenario
from repro.consensus.commands import Command, flatten_value
from repro.core.config import OmegaConfig
from repro.fuzz.linearizability import check_history
from repro.service.clients import ClosedLoopClient, start_clients, uniform_workload
from repro.service.sharding import ShardedService
from repro.simulation.adversary import ChurnAdversary, LeaderHunter, RandomAdversary
from repro.simulation.delays import ConstantDelay
from repro.simulation.faults import FaultPlan
from repro.util.rng import derive_seed


class ConstantDelayScenario(Scenario):
    """Uniform constant delays — the fuzzer's controllable baseline.

    Constant symmetric delays make every process an (intermittent) star
    centre, so leadership is well-defined and the scenario has no protected
    process: every fault plan is assumption-admissible, which is exactly what
    a fuzzer wants — the *plans* are the experiment, not the delay model.
    """

    name = "constant-delay"

    def __init__(self, n: int, t: int, delay: float = 0.5) -> None:
        super().__init__(n, t)
        if delay <= 0:
            raise ValueError(f"delay must be positive, got {delay}")
        self.delay = delay

    def build_delay_model(self) -> ConstantDelay:
        return ConstantDelay(self.delay)

    def recommended_omega_config(self) -> OmegaConfig:
        # ALIVE period comfortably above the delay keeps rounds closing.
        return OmegaConfig(alive_period=max(1.0, 2.0 * self.delay))


#: Adversary names accepted by :attr:`ScenarioSpec.adversary`.
ADVERSARIES = ("leader-hunter", "churn", "random")


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """Everything but the fault plan: topology, workload, knobs, master seed.

    A spec is deliberately JSON-flat (``to_dict``/``from_dict``) so findings
    and regression artifacts can embed it verbatim and campaign workers can
    receive it across process boundaries.
    """

    n: int = 3
    t: int = 1
    num_shards: int = 1
    seed: int = 0
    horizon: float = 110.0
    quiesce_at: float = 80.0
    num_clients: int = 2
    num_keys: int = 4
    read_fraction: float = 0.5
    poll_interval: float = 1.0
    retry_timeout: float = 12.0
    batch_size: int = 1
    drive_period: float = 2.0
    retry_period: float = 10.0
    scenario: str = "constant"  # "constant" | "star"
    delay: float = 0.5
    stable_storage: bool = False
    compaction: Optional[int] = None
    adversary: Optional[str] = None
    adversary_period: float = 15.0
    #: Lease-based read path (leader leases + read-index; see
    #: :mod:`repro.consensus.leases`).  Off by default: every committed
    #: leases-off fingerprint stays byte-identical.
    leases: bool = False
    lease_duration: float = 6.0
    #: **Unsafe when False** — serve-time expiry validation off; exists so the
    #: stale-read regression witness can pin the schedule where the virtual
    #: clock check is load-bearing.
    lease_validation: bool = True

    def __post_init__(self) -> None:
        if self.scenario not in ("constant", "star"):
            raise ValueError(f"unknown scenario {self.scenario!r}")
        if self.adversary is not None and self.adversary not in ADVERSARIES:
            raise ValueError(
                f"unknown adversary {self.adversary!r} (expected one of {ADVERSARIES})"
            )
        if not 0 < self.quiesce_at <= self.horizon:
            raise ValueError(
                f"quiesce_at={self.quiesce_at} must lie in (0, horizon={self.horizon}]"
            )

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise ValueError(f"scenario spec must be a dict, got {data!r}")
        names = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise ValueError(f"unknown scenario spec field(s) {unknown}")
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant breach observed by an execution's probes."""

    kind: str  # "agreement" | "exactly-once" | "divergence" | "durability" | "stale-read" | "linearizability"
    shard: int
    detail: str

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "shard": self.shard, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Dict) -> "Violation":
        return cls(
            kind=str(data["kind"]), shard=int(data["shard"]), detail=str(data["detail"])
        )


@dataclasses.dataclass
class ExecutionResult:
    """The deterministic outcome of one fuzz execution."""

    spec_data: Dict
    plan_data: Dict
    features: Dict[str, int]
    violations: Tuple[Violation, ...]
    leader_change_times: Tuple[float, ...]
    fingerprint: str
    amnesia_hazards: Tuple[str, ...]
    assumption_violations: Tuple[str, ...]
    history_len: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        return {
            "spec": dict(self.spec_data),
            "plan": dict(self.plan_data),
            "features": dict(self.features),
            "violations": [v.to_dict() for v in self.violations],
            "leader_change_times": list(self.leader_change_times),
            "fingerprint": self.fingerprint,
            "amnesia_hazards": list(self.amnesia_hazards),
            "assumption_violations": list(self.assumption_violations),
            "history_len": self.history_len,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExecutionResult":
        return cls(
            spec_data=dict(data["spec"]),
            plan_data=dict(data["plan"]),
            features={str(k): int(v) for k, v in data["features"].items()},
            violations=tuple(Violation.from_dict(v) for v in data["violations"]),
            leader_change_times=tuple(float(x) for x in data["leader_change_times"]),
            fingerprint=str(data["fingerprint"]),
            amnesia_hazards=tuple(str(x) for x in data["amnesia_hazards"]),
            assumption_violations=tuple(str(x) for x in data["assumption_violations"]),
            history_len=int(data["history_len"]),
        )


# ------------------------------------------------------------------ construction --
def _build_adversary(spec: ScenarioSpec):
    if spec.adversary is None:
        return None
    kwargs = dict(period=spec.adversary_period, stop=spec.quiesce_at)
    if spec.adversary == "leader-hunter":
        return LeaderHunter(downtime=10.0, **kwargs)
    if spec.adversary == "churn":
        return ChurnAdversary(downtime=8.0, **kwargs)
    if spec.adversary == "random":
        return RandomAdversary(seed=derive_seed(spec.seed, "adversary"), **kwargs)
    raise ValueError(f"unknown adversary {spec.adversary!r}")


def build_service(spec: ScenarioSpec, plan: FaultPlan) -> ShardedService:
    """Construct the sharded service a spec describes, with *plan* on every shard."""
    plan_data = plan.to_dict()

    def scenario_factory(shard: int) -> Scenario:
        if spec.scenario == "star":
            return IntermittentRotatingStarScenario(
                n=spec.n,
                t=spec.t,
                center=shard % spec.n,
                seed=derive_seed(spec.seed, "scenario", shard),
                max_gap=4,
            )
        return ConstantDelayScenario(spec.n, spec.t, delay=spec.delay)

    def fault_plan_factory(shard: int) -> FaultPlan:
        # A fresh deserialization per shard: plans are stateless, but sharing
        # one object across shards would alias the injector bookkeeping.
        return FaultPlan.from_dict(plan_data)

    return ShardedService(
        num_shards=spec.num_shards,
        n=spec.n,
        t=spec.t,
        scenario_factory=scenario_factory,
        fault_plan_factory=fault_plan_factory,
        adversary=_build_adversary(spec),
        batch_size=spec.batch_size,
        drive_period=spec.drive_period,
        retry_period=spec.retry_period,
        seed=spec.seed,
        stable_storage=spec.stable_storage,
        compaction=spec.compaction,
        leases=spec.leases,
        lease_duration=spec.lease_duration,
        lease_validation=spec.lease_validation,
    )


# ------------------------------------------------------------------ invariant probes --
def _iter_logs(service: ShardedService, shard: int):
    """Yield ``(pid, replicated log)`` of every shell of *shard* (crashed too).

    A crashed shell's algorithm object is its last incarnation — its decisions
    were really made, so agreement must hold across them as well.
    """
    for shell in service.systems[shard].shells:
        log = getattr(shell.algorithm, "log", None)
        if log is not None:
            yield shell.pid, log


def agreement_violations(service: ShardedService) -> List[Violation]:
    """Per-position agreement across every replica of every shard."""
    violations: List[Violation] = []
    for shard in range(service.num_shards):
        decided: Dict[int, Dict[object, List[int]]] = {}
        for pid, log in _iter_logs(service, shard):
            for position, value in log.decided_log().items():
                decided.setdefault(position, {}).setdefault(repr(value), []).append(pid)
        for position in sorted(decided):
            values = decided[position]
            if len(values) > 1:
                detail = "; ".join(
                    f"pids {sorted(pids)} decided {value[:80]}"
                    for value, pids in sorted(values.items())
                )
                violations.append(
                    Violation(
                        kind="agreement",
                        shard=shard,
                        detail=f"position {position} decided differently: {detail}",
                    )
                )
    return violations


def session_violations(
    service: ShardedService, clients: List[ClosedLoopClient]
) -> List[Violation]:
    """Exactly-once safety: no phantom and no cross-shard duplicate commands."""
    violations: List[Violation] = []
    issued = {client.client_id: client.seq for client in clients}
    seen_at: Dict[Tuple[str, int], List[int]] = {}
    for shard in range(service.num_shards):
        replicas = service.correct_replicas(shard)
        if not replicas:
            continue
        sessions = replicas[0].state_machine.sessions()
        for client_id, seqs in sessions.items():
            for seq in seqs:
                if seq < 1 or seq > issued.get(client_id, 0):
                    violations.append(
                        Violation(
                            kind="exactly-once",
                            shard=shard,
                            detail=(
                                f"phantom command ({client_id!r}, seq={seq}) applied "
                                f"but the client issued only {issued.get(client_id, 0)}"
                            ),
                        )
                    )
                else:
                    seen_at.setdefault((client_id, seq), []).append(shard)
    for (client_id, seq), shards in sorted(seen_at.items()):
        if len(shards) > 1:
            violations.append(
                Violation(
                    kind="exactly-once",
                    shard=shards[0],
                    detail=(
                        f"command ({client_id!r}, seq={seq}) applied on "
                        f"{len(shards)} shards {shards} — keys map to one shard"
                    ),
                )
            )
    return violations


def divergence_violations(service: ShardedService) -> List[Violation]:
    """Digest-chain convergence: equally-advanced correct replicas agree.

    Replicas that delivered the same number of commands applied — if the log
    layer is safe — the same prefix, so their state digests must be equal.
    Laggards (catch-up still in flight at the horizon) are compared only with
    their equally-advanced peers, never with the frontier group, keeping the
    probe free of liveness false positives.
    """
    violations: List[Violation] = []
    for shard in range(service.num_shards):
        groups: Dict[int, Dict[str, List[int]]] = {}
        for replica in service.correct_replicas(shard):
            advance = replica.log.delivered_total
            digest = replica.state_machine.digest()
            groups.setdefault(advance, {}).setdefault(digest, []).append(replica.pid)
        for advance in sorted(groups):
            digests = groups[advance]
            if len(digests) > 1:
                sides = "; ".join(
                    f"pids {sorted(pids)} at {digest[:12]}"
                    for digest, pids in sorted(digests.items())
                )
                violations.append(
                    Violation(
                        kind="divergence",
                        shard=shard,
                        detail=(
                            f"replicas that delivered {advance} commands disagree "
                            f"on state: {sides}"
                        ),
                    )
                )
    return violations


def durability_violations(
    service: ShardedService, clients: List[ClosedLoopClient]
) -> List[Violation]:
    """Every acknowledged operation is still applied somewhere correct.

    Lease-served reads are exempt when the lease path is on: they are answered
    from a replica's applied state without ever entering the log, so "applied
    at a correct replica" is not their durability contract — their correctness
    is checked by the linearizability and stale-read probes instead.  Only
    reads that actually appear in the lease-read audit trail are exempt: a get
    that timed out and *fell back* to the ordered consensus path did enter the
    log and stays subject to the check like any write.
    """
    violations: List[Violation] = []
    lease_served: set = set()
    if service.leases:
        for audits in service.read_audits:
            for client_id, seq, *_ in audits:
                lease_served.add((client_id, seq))
    for client in clients:
        for record in client.history:
            if record.op == "get" and (record.client_id, record.seq) in lease_served:
                continue
            shard = service.shard_for(record.key)
            if not any(
                replica.command_applied(record.client_id, record.seq)
                for replica in service.correct_replicas(shard)
            ):
                violations.append(
                    Violation(
                        kind="durability",
                        shard=shard,
                        detail=(
                            f"acknowledged op ({record.client_id!r}, seq={record.seq}, "
                            f"{record.op} {record.key!r}) is applied at no correct replica"
                        ),
                    )
                )
    return violations


def linearizability_violations(clients: List[ClosedLoopClient]) -> List[Violation]:
    """Wing–Gong check of the merged client history against the KV spec."""
    merged = [record for client in clients for record in client.history]
    verdict = check_history(merged)
    return [
        Violation(
            kind="linearizability",
            shard=-1,
            detail=f"key {failure.key!r}: {failure.reason}",
        )
        for failure in verdict.failures
    ]


def stale_read_violations(
    service: ShardedService, clients: List[ClosedLoopClient]
) -> List[Violation]:
    """No lease-served read misses a write that completed before it started.

    The lease path's end-to-end staleness check, independent of the Wing–Gong
    probe: every lease-served read was audited with the log index certified
    for it (the serving replica had applied positions ``< index``).  For each
    audited read, any write on the same key whose client observed completion
    at or before the read's invocation must sit at a decided position below
    that index — a position at or above it means the read was served from a
    state provably missing an already-acknowledged write.

    Write positions are recovered from a correct replica's resident decided
    log; writes whose position was compacted away are skipped (under-coverage,
    never a false positive).
    """
    if not service.leases:
        return []
    violations: List[Violation] = []
    for shard in range(service.num_shards):
        audits = service.read_audits[shard]
        if not audits:
            continue
        replicas = service.correct_replicas(shard)
        if not replicas:
            continue
        position_of: Dict[Tuple[str, int], int] = {}
        for position, value in replicas[0].log.decided_log().items():
            for command in flatten_value(value):
                if isinstance(command, Command):
                    position_of[(command.client_id, command.seq)] = position
        # key -> [(completion observed at, decided position)] of write ops.
        writes: Dict[str, List[Tuple[float, int]]] = {}
        for client in clients:
            for record in client.history:
                if record.op == "get":
                    continue
                position = position_of.get((record.client_id, record.seq))
                if position is not None and service.shard_for(record.key) == shard:
                    writes.setdefault(record.key, []).append(
                        (record.completed_at, position)
                    )
        for client_id, seq, key, _result, index, invoked_at, _completed_at in audits:
            for completed_at, position in writes.get(key, ()):
                if completed_at <= invoked_at and position >= index:
                    violations.append(
                        Violation(
                            kind="stale-read",
                            shard=shard,
                            detail=(
                                f"read ({client_id!r}, seq={seq}) of {key!r} was "
                                f"served at index {index} after a write decided at "
                                f"position {position} had completed by "
                                f"t={completed_at} (read invoked at t={invoked_at})"
                            ),
                        )
                    )
    return violations


def check_invariants(
    service: ShardedService, clients: List[ClosedLoopClient]
) -> List[Violation]:
    """Run every probe; the returned order is deterministic."""
    violations: List[Violation] = []
    violations.extend(agreement_violations(service))
    violations.extend(session_violations(service, clients))
    violations.extend(divergence_violations(service))
    violations.extend(durability_violations(service, clients))
    violations.extend(stale_read_violations(service, clients))
    violations.extend(linearizability_violations(clients))
    return violations


# ------------------------------------------------------------------ feature harvest --
def harvest_features(
    service: ShardedService, clients: List[ClosedLoopClient]
) -> Dict[str, int]:
    """The coverage feature vector (every value a non-negative int).

    Protocol counters are read through the recovery-proof
    ``ShardedService._lifetime_counter`` accessors (retired + live
    incarnations), so features are monotone over the run regardless of
    restarts — the counter-gap audit of this PR exists precisely so a restart
    cannot make a campaign believe a behaviour disappeared.
    """
    recoveries = sum(
        shell.recoveries for system in service.systems for shell in system.shells
    )
    leader_changes = 0
    for system in service.systems:
        for shell in system.shells:
            history = getattr(shell.algorithm, "omega", None)
            if history is not None:
                leader_changes += max(0, len(history.leader_history) - 1)
    dropped = sum(system.stats.total_dropped for system in service.systems)
    features = {
        "decided_positions": service.total_instances(),
        "applied_commands": service.total_applied(),
        "completed_ops": sum(client.stats.completed for client in clients),
        "client_retries": sum(client.stats.retries for client in clients),
        "leader_changes": leader_changes,
        "round_resyncs": service.round_resyncs(),
        "suspicions_sent": service._lifetime_counter("suspicions_sent"),
        "catchup_polls": service.catchup_polls(),
        "catchup_replies": service.catchup_replies(),
        "recoveries": recoveries,
        "messages_dropped": dropped,
        "corrupted_messages": service.corrupted_messages(),
        "corruption_rejections": service.corruption_rejections(),
        "snapshots_taken": service.snapshots_taken(),
        "snapshot_restores": service.snapshot_restores(),
        "positions_compacted": service.positions_compacted(),
        "snapshots_rejected": service.snapshots_rejected(),
        "storage_writes": service.storage_writes(),
    }
    if service.leases:
        # Lease-mode-only features: leases-off feature vectors (and the
        # fingerprints hashed over them) stay byte-identical to the seed.
        features["lease_renewals"] = service.lease_renewals()
        features["lease_gated_drops"] = service.lease_gated_drops()
        features["lease_reads_served"] = service.lease_reads_served()
        features["lease_read_fallbacks"] = service.lease_read_fallbacks()
        features["read_index_polls"] = service.read_index_polls()
    return features


def _leader_change_times(service: ShardedService) -> Tuple[float, ...]:
    """Merged, deduplicated leader-change instants across live incarnations."""
    times = set()
    for system in service.systems:
        for shell in system.shells:
            omega = getattr(shell.algorithm, "omega", None)
            if omega is None:
                continue
            for index, (when, _leader) in enumerate(omega.leader_history):
                if index > 0:
                    times.add(round(float(when), 6))
    return tuple(sorted(times))


# ------------------------------------------------------------------ the instrument --
def run_scenario(spec: ScenarioSpec, plan: FaultPlan) -> ExecutionResult:
    """Execute one ``(spec, plan)`` pair; pure in ``(spec, plan, spec.seed)``."""
    plan.validate(spec.n, spec.t)
    service = build_service(spec, plan)
    clients = start_clients(
        service,
        num_clients=spec.num_clients,
        workload_factory=lambda index: uniform_workload(
            spec.num_keys, read_fraction=spec.read_fraction
        ),
        poll_interval=spec.poll_interval,
        retry_timeout=spec.retry_timeout,
        stop_at=spec.quiesce_at,
        record_history=True,
    )
    service.run_until(spec.horizon)

    violations = tuple(check_invariants(service, clients))
    features = harvest_features(service, clients)
    history = sorted(
        record.to_tuple() for client in clients for record in client.history
    )
    digests = [
        sorted(service.state_digests(shard)) for shard in range(service.num_shards)
    ]
    payload = repr(
        (
            sorted(features.items()),
            [
                (violation.kind, violation.shard, violation.detail)
                for violation in violations
            ],
            digests,
            history,
        )
    ).encode("utf-8")
    return ExecutionResult(
        spec_data=spec.to_dict(),
        plan_data=plan.to_dict(),
        features=features,
        violations=violations,
        leader_change_times=_leader_change_times(service),
        fingerprint=hashlib.sha256(payload).hexdigest(),
        amnesia_hazards=tuple(
            hazard
            for shard in range(service.num_shards)
            for hazard in service.amnesia_hazards[shard]
        ),
        assumption_violations=tuple(
            violation
            for shard in range(service.num_shards)
            for violation in service.assumption_violations[shard]
        ),
        history_len=len(history),
    )


__all__ = [
    "ADVERSARIES",
    "ConstantDelayScenario",
    "ExecutionResult",
    "ScenarioSpec",
    "Violation",
    "agreement_violations",
    "build_service",
    "check_invariants",
    "divergence_violations",
    "durability_violations",
    "harvest_features",
    "linearizability_violations",
    "run_scenario",
    "session_violations",
    "stale_read_violations",
]
