"""Execution-feature coverage: the campaign's novelty detector.

The fuzzer has no branch coverage to instrument — the "program" is a
distributed execution — so coverage is defined over the *behavioural feature
vector* an execution produces (leader changes, round resyncs, catch-up and
snapshot traffic, corruption rejections, recoveries, ...; see
:func:`repro.fuzz.executor.harvest_features`).  Exact counts are too fine to
generalise (a run with 17 retries is not meaningfully novel next to one with
16), so counts are bucketed on a log2 scale — the classic AFL hit-count
trick — and an execution is *interesting* when it lights up a
``(feature, bucket)`` pair never seen before, or a never-seen combination of
pairs (a new joint behaviour built from individually known ones).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

#: One bucketed observation: ``(feature name, log2 bucket)``.
FeatureBucket = Tuple[str, int]


def bucket(value: int) -> int:
    """Log2 bucket of a non-negative count: 0->0, 1->1, 2-3->2, 4-7->3, ..."""
    if value <= 0:
        return 0
    return int(value).bit_length()


def signature(features: Dict[str, int]) -> FrozenSet[FeatureBucket]:
    """The bucketed form of a feature vector (order-insensitive)."""
    return frozenset((name, bucket(count)) for name, count in features.items())


class CoverageMap:
    """Accumulates every ``(feature, bucket)`` pair and signature ever seen."""

    def __init__(self) -> None:
        self._pairs: Set[FeatureBucket] = set()
        self._signatures: Set[FrozenSet[FeatureBucket]] = set()
        #: Executions observed (for the campaign report).
        self.observations = 0

    def observe(self, features: Dict[str, int]) -> Tuple[int, bool]:
        """Fold one execution in; return ``(new pairs, new signature)``.

        An execution is *interesting* — worth keeping as a corpus seed — when
        either component is non-zero/true.
        """
        self.observations += 1
        sig = signature(features)
        new_pairs = len(sig - self._pairs)
        new_signature = sig not in self._signatures
        self._pairs.update(sig)
        self._signatures.add(sig)
        return new_pairs, new_signature

    def is_interesting(self, features: Dict[str, int]) -> bool:
        """Non-mutating preview of :meth:`observe`'s verdict."""
        sig = signature(features)
        return bool(sig - self._pairs) or sig not in self._signatures

    @property
    def pairs_seen(self) -> int:
        return len(self._pairs)

    @property
    def signatures_seen(self) -> int:
        return len(self._signatures)

    def pairs(self) -> List[FeatureBucket]:
        """Sorted snapshot of the covered ``(feature, bucket)`` pairs."""
        return sorted(self._pairs)

    def merge(self, other: "CoverageMap") -> None:
        """Union another map in (campaign-level aggregation)."""
        self._pairs.update(other._pairs)
        self._signatures.update(other._signatures)
        self.observations += other.observations


__all__ = ["CoverageMap", "FeatureBucket", "bucket", "signature"]
