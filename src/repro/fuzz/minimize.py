"""Automatic counterexample minimization: delta-debug events, then shrink time.

A finding's raw plan usually carries mutation debris — spliced chunks that
never mattered, jittered timestamps with six decimals.  Minimization runs the
real executor as its oracle:

1. **ddmin over the event list** (Zeller's delta debugging): remove
   complement chunks at doubling granularity, keeping any subset that still
   reproduces a violation of the target kinds.  Subsets that no longer form a
   valid plan (a ``Recover`` whose ``Crash`` was removed, a busted budget)
   simply fail the predicate — validity is part of the oracle.
2. **Timing shrink**: snap each surviving event's ``time``/``until`` to the
   coarsest value (integer, then one decimal) that still reproduces, and try
   dropping ``until`` windows entirely.  The emitted counterexample reads
   like something a person would have written.

Every probe is one deterministic :func:`~repro.fuzz.executor.run_scenario`
call, so the minimized plan — and the regression test emitted from it —
replays byte-identically from its ``(seed, plan)`` pair.
"""

from __future__ import annotations

import dataclasses
import pprint
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.fuzz.executor import ScenarioSpec, run_scenario
from repro.simulation.faults import FaultEvent, FaultPlan

Predicate = Callable[[Sequence[FaultEvent]], bool]


@dataclasses.dataclass
class MinimizationResult:
    """Outcome of one minimization run."""

    plan: FaultPlan
    original_events: int
    minimized_events: int
    executions_used: int
    target_kinds: Tuple[str, ...]


class _Budget:
    """Counts oracle executions and stops the search when exhausted."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit

    def charge(self) -> bool:
        if self.exhausted:
            return False
        self.used += 1
        return True


def _violates(
    spec: ScenarioSpec,
    events: Sequence[FaultEvent],
    target_kinds: Set[str],
    budget: _Budget,
) -> bool:
    """Oracle: does this event list still reproduce a targeted violation?"""
    if not budget.charge():
        return False
    plan = FaultPlan(list(events))
    try:
        plan.validate(spec.n, spec.t)
    except ValueError:
        return False
    result = run_scenario(spec, plan)
    return any(violation.kind in target_kinds for violation in result.violations)


def ddmin(
    events: Sequence[FaultEvent],
    predicate: Predicate,
) -> List[FaultEvent]:
    """Classic ddmin: the returned list is 1-minimal w.r.t. *predicate* (as
    far as the predicate's own budget allowed)."""
    current = list(events)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            complement = current[:start] + current[start + chunk :]
            if complement and predicate(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def _shrink_times(
    events: List[FaultEvent], predicate: Predicate
) -> List[FaultEvent]:
    """Snap times to coarse values and drop ``until`` windows where possible."""
    current = list(events)
    for index in range(len(current)):
        event = current[index]
        candidates: List[FaultEvent] = []
        for digits in (0, 1):
            rounded = round(event.time, digits)
            if rounded != event.time and rounded >= 0:
                changes: Dict[str, object] = {"time": rounded}
                until = getattr(event, "until", None)
                if until is not None and until <= rounded:
                    changes["until"] = rounded + max(1.0, until - event.time)
                candidates.append(dataclasses.replace(event, **changes))
        until = getattr(event, "until", None)
        if until is not None:
            candidates.append(dataclasses.replace(event, until=None))
            for digits in (0, 1):
                rounded = round(until, digits)
                if rounded != until and rounded > event.time:
                    candidates.append(dataclasses.replace(event, until=rounded))
        for candidate in candidates:
            trial = current[:index] + [candidate] + current[index + 1 :]
            if predicate(trial):
                current = trial
                break
    return current


def minimize(
    spec: ScenarioSpec,
    plan: FaultPlan,
    target_kinds: Sequence[str],
    budget: int = 120,
) -> MinimizationResult:
    """Shrink *plan* while it keeps violating one of *target_kinds*.

    The original plan is assumed to reproduce (callers pass a confirmed
    finding); when the budget is too small to even confirm, the original is
    returned unchanged.
    """
    kinds = set(target_kinds)
    tracker = _Budget(budget)

    def predicate(events: Sequence[FaultEvent]) -> bool:
        return _violates(spec, events, kinds, tracker)

    events = list(plan.events)
    if not predicate(events):  # confirm (or budget=0): nothing to do safely
        return MinimizationResult(
            plan=plan,
            original_events=len(events),
            minimized_events=len(events),
            executions_used=tracker.used,
            target_kinds=tuple(sorted(kinds)),
        )
    reduced = ddmin(events, predicate)
    reduced = _shrink_times(reduced, predicate)
    return MinimizationResult(
        plan=FaultPlan(reduced),
        original_events=len(events),
        minimized_events=len(reduced),
        executions_used=tracker.used,
        target_kinds=tuple(sorted(kinds)),
    )


# ------------------------------------------------------------------ regression emit --
_REGRESSION_TEMPLATE = '''"""Auto-generated fuzz regression: {title}.

Emitted by repro.fuzz.minimize.emit_regression_test from a minimized
counterexample.  The scenario replays deterministically from the embedded
(spec, plan) pair; the assertion pins the violation kind(s) the campaign
observed{gate_note}.
"""

{imports}from repro.fuzz.executor import ScenarioSpec, run_scenario
from repro.simulation.faults import FaultPlan

SPEC = {spec_json}

PLAN = {plan_json}

EXPECTED_KINDS = {kinds!r}


{gate_deco}def test_{name}():
    spec = ScenarioSpec.from_dict(SPEC)
    plan = FaultPlan.from_dict(PLAN, n=spec.n, t=spec.t)
    result = run_scenario(spec, plan)
    observed = {{violation.kind for violation in result.violations}}
    assert set(EXPECTED_KINDS) <= observed, (
        f"expected violation kinds {{EXPECTED_KINDS}} to reproduce, "
        f"observed {{sorted(observed)}}"
    )
'''


def emit_regression_test(
    name: str,
    spec: ScenarioSpec,
    plan: FaultPlan,
    kinds: Sequence[str],
    title: Optional[str] = None,
    skip_env: Optional[str] = None,
) -> str:
    """Render a self-contained pytest module reproducing a minimized finding.

    ``skip_env`` gates the test behind an environment variable (set to ``1``
    to skip), the convention expected-violation witnesses in this repo use.
    """
    safe = name.replace("-", "_")
    if not safe.isidentifier():
        raise ValueError(f"{name!r} does not form a valid test name")
    # pprint (not json.dumps): the dicts are embedded as Python literals,
    # so None/True/False must render as such, not null/true/false.
    spec_json = pprint.pformat(spec.to_dict(), width=79, sort_dicts=True)
    plan_json = pprint.pformat(plan.to_dict(), width=79, sort_dicts=True)
    imports = ""
    gate_deco = ""
    gate_note = ""
    if skip_env:
        imports = "import os\n\nimport pytest\n\n"
        gate_deco = (
            f'@pytest.mark.skipif(\n    os.environ.get("{skip_env}") == "1",\n'
            f'    reason="disabled via {skip_env}=1",\n)\n'
        )
        gate_note = f" (skippable via {skip_env}=1)"
    return _REGRESSION_TEMPLATE.format(
        title=title or f"minimized fault schedule {name}",
        name=safe,
        imports=imports,
        spec_json=spec_json,
        plan_json=plan_json,
        kinds=tuple(sorted(set(kinds))),
        gate_deco=gate_deco,
        gate_note=gate_note,
    )


__all__ = [
    "MinimizationResult",
    "ddmin",
    "emit_regression_test",
    "minimize",
]
