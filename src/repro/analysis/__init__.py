"""Measurement, tracing and experiment harness."""

from repro.analysis.bounds import BoundsAudit, audit_bounds
from repro.analysis.experiments import (
    ExperimentResult,
    build_system,
    compare_algorithms,
    run_omega_experiment,
    summarize_run,
)
from repro.analysis.metrics import LeaderPoller, LeaderSample, MessageStats, summarize_levels
from repro.analysis.service_metrics import (
    LatencyStats,
    ServiceSummary,
    ShardReport,
    latency_stats,
    summarize_service,
)
from repro.analysis.trace import TraceEvent, Tracer

__all__ = [
    "BoundsAudit",
    "ExperimentResult",
    "LatencyStats",
    "LeaderPoller",
    "LeaderSample",
    "MessageStats",
    "ServiceSummary",
    "ShardReport",
    "TraceEvent",
    "Tracer",
    "audit_bounds",
    "build_system",
    "compare_algorithms",
    "latency_stats",
    "run_omega_experiment",
    "summarize_levels",
    "summarize_run",
    "summarize_service",
]
