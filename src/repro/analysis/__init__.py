"""Measurement, tracing and experiment harness."""

from repro.analysis.bounds import BoundsAudit, audit_bounds
from repro.analysis.experiments import (
    ExperimentResult,
    build_system,
    compare_algorithms,
    run_omega_experiment,
    summarize_run,
)
from repro.analysis.metrics import (
    AvailabilitySampler,
    LeaderPoller,
    LeaderSample,
    MessageStats,
    component_agreed_leaders,
    component_leaders,
    reachable_components,
    summarize_levels,
)
from repro.analysis.service_metrics import (
    LatencyStats,
    ServiceSummary,
    ShardReport,
    latency_stats,
    summarize_service,
)
from repro.analysis.trace import TraceEvent, Tracer

__all__ = [
    "AvailabilitySampler",
    "BoundsAudit",
    "ExperimentResult",
    "LatencyStats",
    "LeaderPoller",
    "LeaderSample",
    "MessageStats",
    "ServiceSummary",
    "ShardReport",
    "TraceEvent",
    "Tracer",
    "audit_bounds",
    "build_system",
    "compare_algorithms",
    "component_agreed_leaders",
    "component_leaders",
    "latency_stats",
    "reachable_components",
    "run_omega_experiment",
    "summarize_levels",
    "summarize_run",
    "summarize_service",
]
