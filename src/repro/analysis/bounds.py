"""Audit of the boundedness claims of Section 6 (Figure 3).

The paper proves three quantitative properties of the Figure 3 algorithm that can be
checked mechanically on any execution:

* **Lemma 8** — at every process, at all times,
  ``max(susp_level) - min(susp_level) <= 1``;
* **Theorem 4** — no entry of any ``susp_level`` array ever exceeds ``B + 1``, where
  ``B`` is the largest value ever reached by the *smallest* entry of any array
  (operationally: the final common value of the eventual leader's entry);
* the **timeout values stabilise** (they are derived from ``max(susp_level)``).

:class:`BoundsAudit` evaluates the three properties from the final state of a system
plus the polling samples collected by a :class:`~repro.analysis.metrics.LeaderPoller`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.analysis.metrics import LeaderPoller
from repro.core.omega_base import RotatingStarOmegaBase
from repro.simulation.system import System


@dataclasses.dataclass
class BoundsAudit:
    """Outcome of the boundedness audit of one execution.

    Attributes
    ----------
    max_level_ever:
        Largest suspicion-level entry observed anywhere (final state and samples).
    bound_b:
        The empirical ``B``: the largest value reached by the minimum entry of any
        live process's array.
    theorem4_holds:
        ``max_level_ever <= bound_b + 1``.
    lemma8_violations:
        Number of sampled (process, time) points where ``max - min > 1``.
    timeouts_stabilized:
        True when no live process changed its timeout over the sampling tail.
    final_timeouts:
        pid -> last line-11 timeout value.
    """

    max_level_ever: int
    bound_b: int
    theorem4_holds: bool
    lemma8_violations: int
    timeouts_stabilized: bool
    final_timeouts: Dict[int, float]

    def as_row(self) -> List[object]:
        """Row representation used by the benchmark tables."""
        return [
            self.max_level_ever,
            self.bound_b,
            "yes" if self.theorem4_holds else "NO",
            self.lemma8_violations,
            "yes" if self.timeouts_stabilized else "NO",
        ]


def audit_bounds(system: System, poller: Optional[LeaderPoller] = None) -> BoundsAudit:
    """Audit the boundedness claims on a finished (or paused) execution.

    Crashed processes are included for ``max_level_ever`` (their arrays simply froze
    at crash time) but only live processes contribute to ``B`` — the paper defines
    ``B`` from the values the arrays converge to, which crashed processes never do.
    """
    max_level_ever = 0
    bound_b = 0
    final_timeouts: Dict[int, float] = {}
    for shell in system.shells:
        algorithm = shell.algorithm
        if not isinstance(algorithm, RotatingStarOmegaBase):
            continue
        levels = algorithm.susp_level_snapshot()
        max_level_ever = max(max_level_ever, algorithm.susp_level.max_ever)
        if not shell.crashed:
            bound_b = max(bound_b, min(levels.values()))
            final_timeouts[shell.pid] = algorithm.current_timeout

    lemma8_violations = 0
    timeouts_stabilized = True
    if poller is not None:
        max_level_ever = max(max_level_ever, poller.max_susp_level())
        lemma8_violations = poller.spread_violations()
        timeouts_stabilized = poller.timeout_stabilized()

    # Also check the invariant on the final states (cheap, independent of polling).
    for shell in system.alive_shells():
        algorithm = shell.algorithm
        if isinstance(algorithm, RotatingStarOmegaBase):
            if algorithm.susp_level.spread() > 1:
                lemma8_violations += 1

    return BoundsAudit(
        max_level_ever=max_level_ever,
        bound_b=bound_b,
        theorem4_holds=max_level_ever <= bound_b + 1,
        lemma8_violations=lemma8_violations,
        timeouts_stabilized=timeouts_stabilized,
        final_timeouts=final_timeouts,
    )
