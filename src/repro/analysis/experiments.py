"""Experiment runner shared by the tests, the examples and the benchmark harness.

:func:`run_omega_experiment` builds a system from a scenario and an algorithm class,
runs it for a virtual-time horizon, and condenses the execution into an
:class:`ExperimentResult` holding exactly the quantities the per-experiment index of
``DESIGN.md`` calls for: stabilisation time, final leader and its correctness,
leader changes, message counts, boundedness statistics.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Type

from repro.analysis.bounds import BoundsAudit, audit_bounds
from repro.analysis.metrics import LeaderPoller
from repro.assumptions.base import Scenario
from repro.core.config import OmegaConfig
from repro.core.interfaces import Process
from repro.core.omega_base import RotatingStarOmegaBase
from repro.simulation.crash import CrashSchedule
from repro.simulation.system import System, SystemConfig
from repro.util.validation import require_positive


@dataclasses.dataclass
class ExperimentResult:
    """Condensed outcome of one simulated execution."""

    scenario: str
    algorithm: str
    n: int
    t: int
    seed: int
    duration: float
    #: Earliest time from which all correct processes agreed on one correct leader.
    stabilization_time: Optional[float]
    #: Leader agreed on at the end of the run (None on disagreement).
    final_leader: Optional[int]
    #: True when the final leader is a process that never crashes.
    leader_is_correct: bool
    #: Number of leader changes observed at correct processes over the whole run.
    leader_changes: int
    #: Leader changes observed during the last third of the run (0 once stabilised).
    late_leader_changes: int
    #: Total messages handed to the network.
    messages_sent: int
    #: Messages by tag (ALIVE, SUSPICION, ...).
    messages_by_tag: Dict[str, int]
    #: Largest receiving round reached by any process.
    rounds_completed: int
    #: Boundedness audit (Theorem 4 / Lemma 8 / timeouts).
    bounds: BoundsAudit
    #: Ids of the processes that crashed during the run.
    crashed: List[int]

    @property
    def stabilized(self) -> bool:
        """True when the run reached a stable, correct, common leader."""
        return self.stabilization_time is not None

    def messages_per_time_unit(self) -> float:
        """Average network load (messages per virtual time unit)."""
        return self.messages_sent / self.duration if self.duration else 0.0

    def as_row(self) -> List[object]:
        """Row used by the benchmark report tables."""
        return [
            self.scenario,
            self.algorithm,
            self.n,
            self.t,
            "yes" if self.stabilized else "NO",
            "-" if self.stabilization_time is None else round(self.stabilization_time, 1),
            "-" if self.final_leader is None else self.final_leader,
            self.leader_changes,
            self.late_leader_changes,
            self.messages_sent,
            self.bounds.max_level_ever,
        ]

    @staticmethod
    def row_headers() -> List[str]:
        """Headers matching :meth:`as_row`."""
        return [
            "scenario",
            "algorithm",
            "n",
            "t",
            "stable",
            "stab_time",
            "leader",
            "changes",
            "late_changes",
            "messages",
            "max_level",
        ]


def build_system(
    scenario: Scenario,
    algorithm_cls: Type[RotatingStarOmegaBase],
    seed: int = 0,
    config: Optional[OmegaConfig] = None,
    crash_schedule: Optional[CrashSchedule] = None,
    start_jitter: float = 0.0,
    tracer: Optional[object] = None,
) -> System:
    """Build a simulated system running *algorithm_cls* under *scenario*."""
    omega_config = config if config is not None else scenario.recommended_omega_config()
    schedule = crash_schedule or CrashSchedule.none()
    schedule.validate(scenario.n, scenario.t)
    protected = scenario.protected_processes()
    overlap = protected.intersection(schedule.faulty_ids())
    if overlap:
        raise ValueError(
            f"crash schedule kills protected processes {sorted(overlap)}; the "
            f"scenario {scenario.name} requires them to stay correct"
        )

    def factory(pid: int) -> Process:
        return algorithm_cls(pid=pid, n=scenario.n, t=scenario.t, config=omega_config)

    system_config = SystemConfig(
        n=scenario.n, t=scenario.t, seed=seed, start_jitter=start_jitter
    )
    return System(
        config=system_config,
        process_factory=factory,
        delay_model=scenario.build_delay_model(),
        crash_schedule=schedule,
        tracer=tracer,
    )


def run_omega_experiment(
    scenario: Scenario,
    algorithm_cls: Type[RotatingStarOmegaBase],
    duration: float = 600.0,
    seed: int = 0,
    config: Optional[OmegaConfig] = None,
    crash_schedule: Optional[CrashSchedule] = None,
    poll_interval: float = 5.0,
    start_jitter: float = 0.0,
) -> ExperimentResult:
    """Run one leader-election experiment and summarise it.

    Parameters
    ----------
    scenario:
        The behavioural assumption to enforce (or violate).
    algorithm_cls:
        One of the paper's algorithm classes (or any
        :class:`~repro.core.omega_base.RotatingStarOmegaBase` subclass).
    duration:
        Virtual-time horizon of the run.
    seed:
        Master seed (propagated to delays, crashes and jitter).
    config:
        Algorithm configuration; defaults to the scenario's recommendation.
    crash_schedule:
        Which processes crash and when; defaults to a failure-free run.
    poll_interval:
        Virtual-time distance between two leadership samples.
    """
    require_positive(duration, "duration")
    system = build_system(
        scenario,
        algorithm_cls,
        seed=seed,
        config=config,
        crash_schedule=crash_schedule,
        start_jitter=start_jitter,
    )
    poller = LeaderPoller(system, interval=poll_interval)
    system.run_until(duration)
    system.finish()
    return summarize_run(scenario, algorithm_cls, system, poller, seed, duration)


def summarize_run(
    scenario: Scenario,
    algorithm_cls: Type[RotatingStarOmegaBase],
    system: System,
    poller: LeaderPoller,
    seed: int,
    duration: float,
) -> ExperimentResult:
    """Condense a finished run into an :class:`ExperimentResult`."""
    correct_ids = system.correct_ids()
    stabilization = poller.stabilization_time(correct_ids)
    final_leader = poller.final_leader(correct_ids)
    rounds = 0
    for shell in system.shells:
        algorithm = shell.algorithm
        if isinstance(algorithm, RotatingStarOmegaBase):
            rounds = max(rounds, algorithm.receiving_round - 1)
    return ExperimentResult(
        scenario=scenario.name,
        algorithm=getattr(algorithm_cls, "variant_name", algorithm_cls.__name__),
        n=scenario.n,
        t=scenario.t,
        seed=seed,
        duration=duration,
        stabilization_time=stabilization,
        final_leader=final_leader,
        leader_is_correct=final_leader is not None and final_leader in correct_ids,
        leader_changes=poller.leader_changes(correct_ids),
        late_leader_changes=poller.leader_changes(
            correct_ids, after=2.0 * duration / 3.0
        ),
        messages_sent=system.stats.total_sent,
        messages_by_tag=dict(system.stats.sent_by_tag),
        rounds_completed=rounds,
        bounds=audit_bounds(system, poller),
        crashed=system.crash_schedule.faulty_ids(),
    )


def compare_algorithms(
    scenario: Scenario,
    algorithm_classes: Sequence[Type[RotatingStarOmegaBase]],
    duration: float = 600.0,
    seed: int = 0,
    crash_schedule: Optional[CrashSchedule] = None,
) -> List[ExperimentResult]:
    """Run several algorithms under the same scenario (same seed, same crashes)."""
    return [
        run_omega_experiment(
            scenario,
            algorithm_cls,
            duration=duration,
            seed=seed,
            crash_schedule=crash_schedule,
        )
        for algorithm_cls in algorithm_classes
    ]
