"""Execution traces.

A :class:`Tracer` collects timestamped events emitted by the network, the process
shells and the algorithms (through ``Environment.log``).  Traces are the raw material
of the analysis layer: leader-change counting, message accounting and the
per-experiment reports are all computed from them or from the cheaper polling
mechanism in :mod:`repro.analysis.metrics`.

Tracing is optional and off by default (the benchmark harness keeps it off for the
large sweeps); when enabled its overhead is a single list append per event.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Callable, Dict, Iterable, List, Optional


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """A single recorded event."""

    time: float
    pid: int
    kind: str
    details: tuple

    def detail(self, key: str, default=None):
        """Return a named detail value."""
        return dict(self.details).get(key, default)


class Tracer:
    """Collects :class:`TraceEvent` objects.

    Parameters
    ----------
    kinds:
        When given, only events whose ``kind`` is in this set are recorded — useful
        to keep long runs cheap (e.g. record only ``"leader_change"`` events).
    capacity:
        Optional hard cap on the number of stored events; the oldest events are
        dropped once the cap is reached (the counter keeps counting).
    """

    def __init__(
        self, kinds: Optional[Iterable[str]] = None, capacity: Optional[int] = None
    ) -> None:
        self._kinds = frozenset(kinds) if kinds is not None else None
        self._capacity = capacity
        self.events: List[TraceEvent] = []
        self.counts: Counter = Counter()

    def record(self, time: float, pid: int, kind: str, **details: object) -> None:
        """Record one event (called by the simulator and the environments)."""
        if self._kinds is not None and kind not in self._kinds:
            return
        self.counts[kind] += 1
        event = TraceEvent(time=time, pid=pid, kind=kind, details=tuple(details.items()))
        self.events.append(event)
        if self._capacity is not None and len(self.events) > self._capacity:
            del self.events[0]

    # ------------------------------------------------------------------ queries --
    def of_kind(self, kind: str) -> List[TraceEvent]:
        """Return the recorded events of the given kind, in time order."""
        return [event for event in self.events if event.kind == kind]

    def for_process(self, pid: int) -> List[TraceEvent]:
        """Return the recorded events of the given process, in time order."""
        return [event for event in self.events if event.pid == pid]

    def count(self, kind: str) -> int:
        """Return how many events of *kind* were observed (even if not stored)."""
        return self.counts[kind]

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        """Return the stored events satisfying *predicate*."""
        return [event for event in self.events if predicate(event)]

    def kinds(self) -> Dict[str, int]:
        """Return a dictionary kind -> observed count."""
        return dict(self.counts)

    def __len__(self) -> int:
        return len(self.events)
