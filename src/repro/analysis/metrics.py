"""Measurement of the paper's claims on simulated executions.

The central tool is the :class:`LeaderPoller`: it samples, at a fixed virtual-time
interval, the ``leader()`` output and (when available) the suspicion-level array of
every live process of a system.  From those samples the module computes:

* the *stabilisation time* — the earliest sample time from which every correct
  process reports the same, correct, leader until the end of the run (the
  operational reading of the Eventual Leadership property);
* the number of leader changes observed at correct processes;
* the boundedness statistics needed by experiment E3 (maximum suspicion level,
  Lemma 8 spread violations, final timeout values).

The fault-plan engine (:mod:`repro.simulation.faults`) adds partition-aware and
availability views: :func:`reachable_components` groups the alive processes by
the partition currently in force, :func:`component_leaders` measures leader
agreement *per reachable component* (during a split brain "one leader per
component" is the correct expectation, not global agreement), and
:class:`AvailabilitySampler` tracks how many processes are up over time under
crash-recovery plans.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.interfaces import LeaderOracle
from repro.core.omega_base import RotatingStarOmegaBase
from repro.simulation.network import NetworkStats
from repro.simulation.system import System
from repro.util.validation import require_positive

#: Re-exported alias: the message accounting object of the network.
MessageStats = NetworkStats


@dataclasses.dataclass(frozen=True)
class LeaderSample:
    """One polling sample."""

    time: float
    #: pid -> leader() output, for every live oracle process at sampling time.
    leaders: Dict[int, int]
    #: pid -> susp_level array copy (only for the paper's algorithms).
    susp_levels: Dict[int, Dict[int, int]]
    #: pid -> most recent line-11 timeout value.
    timeouts: Dict[int, float]


class LeaderPoller:
    """Periodically samples leaders and suspicion levels of a running system."""

    def __init__(self, system: System, interval: float = 5.0) -> None:
        require_positive(interval, "interval")
        self.system = system
        self.interval = interval
        self.samples: List[LeaderSample] = []
        self._schedule_next()

    def _schedule_next(self) -> None:
        self.system.scheduler.schedule_after(self.interval, self._sample)

    def _sample(self) -> None:
        leaders: Dict[int, int] = {}
        susp: Dict[int, Dict[int, int]] = {}
        timeouts: Dict[int, float] = {}
        for shell in self.system.alive_shells():
            algorithm = shell.algorithm
            if isinstance(algorithm, LeaderOracle):
                leaders[shell.pid] = algorithm.leader()
            if isinstance(algorithm, RotatingStarOmegaBase):
                susp[shell.pid] = algorithm.susp_level_snapshot()
                timeouts[shell.pid] = algorithm.current_timeout
        self.samples.append(
            LeaderSample(
                time=self.system.now, leaders=leaders, susp_levels=susp, timeouts=timeouts
            )
        )
        self._schedule_next()

    # ------------------------------------------------------------------ analysis --
    def stabilization_time(self, correct_ids: Sequence[int]) -> Optional[float]:
        """Earliest sample time from which all correct processes agree on one
        correct leader in every subsequent sample; ``None`` if never.

        Samples in which a correct process has not produced an output yet (e.g. the
        run just started) simply require agreement among those that have; an empty
        sample never counts as agreement.
        """
        correct = set(correct_ids)
        if not self.samples:
            return None
        good_since: Optional[float] = None
        stable_leader: Optional[int] = None
        for sample in self.samples:
            outputs = {
                pid: leader
                for pid, leader in sample.leaders.items()
                if pid in correct
            }
            values = set(outputs.values())
            if len(outputs) > 0 and len(values) == 1:
                leader = values.pop()
                # Eventual leadership requires the *same* correct leader from some
                # point on, not merely agreement at each instant.
                if leader in correct and leader == stable_leader:
                    if good_since is None:
                        good_since = sample.time
                else:
                    stable_leader = leader if leader in correct else None
                    good_since = sample.time if leader in correct else None
            else:
                stable_leader = None
                good_since = None
        return good_since

    def final_leader(self, correct_ids: Sequence[int]) -> Optional[int]:
        """Return the leader agreed on in the last sample (``None`` on disagreement)."""
        if not self.samples:
            return None
        last = self.samples[-1]
        outputs = {
            leader for pid, leader in last.leaders.items() if pid in set(correct_ids)
        }
        if len(outputs) == 1:
            return outputs.pop()
        return None

    def leader_changes(self, correct_ids: Sequence[int], after: float = 0.0) -> int:
        """Number of observed leader changes at correct processes.

        Only changes materialising at sample times >= *after* are counted (pass the
        last third of the run to measure whether an execution is still churning
        leaders late, the operational signature of a non-stabilising algorithm).
        """
        changes = 0
        previous: Dict[int, int] = {}
        correct = set(correct_ids)
        for sample in self.samples:
            for pid, leader in sample.leaders.items():
                if pid not in correct:
                    continue
                if pid in previous and previous[pid] != leader and sample.time >= after:
                    changes += 1
                previous[pid] = leader
        return changes

    def max_susp_level(self) -> int:
        """Largest suspicion-level entry observed in any sample at any process."""
        maximum = 0
        for sample in self.samples:
            for levels in sample.susp_levels.values():
                if levels:
                    maximum = max(maximum, max(levels.values()))
        return maximum

    def spread_violations(self) -> int:
        """Number of (sample, process) pairs violating Lemma 8 (max - min > 1)."""
        violations = 0
        for sample in self.samples:
            for levels in sample.susp_levels.values():
                if levels and max(levels.values()) - min(levels.values()) > 1:
                    violations += 1
        return violations

    def final_timeouts(self) -> Dict[int, float]:
        """Most recent timeout value per live process (last sample)."""
        if not self.samples:
            return {}
        return dict(self.samples[-1].timeouts)

    def timeout_stabilized(self, tail_fraction: float = 0.25) -> bool:
        """True when no process's timeout changed during the last *tail_fraction*
        of the samples (operational reading of "timeouts eventually stop increasing").
        """
        if len(self.samples) < 4:
            return False
        tail_start = int(len(self.samples) * (1.0 - tail_fraction))
        tail = self.samples[tail_start:]
        per_process: Dict[int, set] = {}
        for sample in tail:
            for pid, timeout in sample.timeouts.items():
                per_process.setdefault(pid, set()).add(timeout)
        return all(len(values) == 1 for values in per_process.values())


# ---------------------------------------------------------------------- partitions
def reachable_components(system: System) -> List[List[int]]:
    """Group the currently-alive pids by mutual reachability.

    With no partition in force (including every system without topology faults)
    all alive processes form one component.  While a partition is active, each
    side that still contains an alive process is one component.  One-way link
    cuts and lossy links do *not* split components — they degrade links rather
    than disconnect groups.
    """
    alive = [shell.pid for shell in system.alive_shells()]
    link_state = system.link_state
    groups = (
        link_state.partition_groups(system.config.n)
        if link_state is not None
        else None
    )
    if groups is None:
        return [alive] if alive else []
    alive_set = set(alive)
    components = [
        [pid for pid in group if pid in alive_set] for group in groups
    ]
    return [component for component in components if component]


def component_leaders(system: System) -> List[Dict[int, int]]:
    """Per reachable component: ``pid -> leader()`` of its alive oracle members."""
    leaders = system.leaders()
    return [
        {pid: leaders[pid] for pid in component if pid in leaders}
        for component in reachable_components(system)
    ]


def component_agreed_leaders(system: System) -> List[Optional[int]]:
    """The leader each reachable component agrees on (``None`` = split within).

    During a partition this is the election metric that matters: the global
    :meth:`~repro.simulation.system.System.agreed_leader` is necessarily
    ``None`` (the sides cannot hear each other), while a healthy Omega stack
    still converges to one leader *inside* each component.
    """
    agreed: List[Optional[int]] = []
    for outputs in component_leaders(system):
        values = set(outputs.values())
        agreed.append(values.pop() if len(values) == 1 else None)
    return agreed


class AvailabilitySampler:
    """Samples how many processes are up, at a fixed virtual-time interval.

    Under crash-recovery fault plans availability is a trajectory, not a
    constant: processes leave and rejoin.  The sampler records the alive
    fraction at every interval; :meth:`availability` is the mean over the whole
    run (the standard "fraction of process-time up" reading) and
    :meth:`min_alive` the worst instant.
    """

    def __init__(self, system: System, interval: float = 5.0) -> None:
        require_positive(interval, "interval")
        self.system = system
        self.interval = interval
        #: ``(time, alive_count)`` pairs, one per sample.
        self.samples: List[tuple] = []
        self._schedule_next()

    def _schedule_next(self) -> None:
        self.system.scheduler.schedule_after(self.interval, self._sample)

    def _sample(self) -> None:
        alive = sum(1 for shell in self.system.shells if not shell.crashed)
        self.samples.append((self.system.now, alive))
        self._schedule_next()

    def availability(self) -> float:
        """Mean alive fraction over the sampled run (1.0 when never sampled)."""
        if not self.samples:
            return 1.0
        n = self.system.config.n
        return sum(count for _, count in self.samples) / (len(self.samples) * n)

    def min_alive(self) -> int:
        """Smallest number of alive processes seen in any sample."""
        if not self.samples:
            return self.system.config.n
        return min(count for _, count in self.samples)


def summarize_levels(levels: Dict[int, Dict[int, int]]) -> Dict[str, int]:
    """Summary statistics over a pid -> susp_level mapping (for reports)."""
    all_values = [value for array in levels.values() for value in array.values()]
    if not all_values:
        return {"max": 0, "min": 0}
    return {"max": max(all_values), "min": min(all_values)}
