"""Throughput, latency and batching metrics of the sharded service (E10).

The quantities of interest for the service layer:

* **throughput** — effective (duplicate-free) commands applied per virtual time
  unit, summed over shards;
* **commands per instance** — how many commands each consensus instance ordered;
  the batching amortisation factor (1.0 for the unbatched seed behaviour);
* **latency** — client-observed issue-to-apply times (closed-loop clients record
  them on the shared virtual clock).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.util.validation import require_positive


@dataclasses.dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample (virtual time units)."""

    count: int
    mean: float
    p50: float
    p95: float
    max: float

    @classmethod
    def empty(cls) -> "LatencyStats":
        return cls(count=0, mean=0.0, p50=0.0, p95=0.0, max=0.0)


def latency_stats(latencies: Sequence[float]) -> LatencyStats:
    """Compute count/mean/p50/p95/max of a latency sample."""
    values = sorted(latencies)
    if not values:
        return LatencyStats.empty()

    def percentile(fraction: float) -> float:
        index = min(len(values) - 1, int(fraction * len(values)))
        return values[index]

    return LatencyStats(
        count=len(values),
        mean=sum(values) / len(values),
        p50=percentile(0.50),
        p95=percentile(0.95),
        max=values[-1],
    )


@dataclasses.dataclass(frozen=True)
class ShardReport:
    """Per-shard service metrics."""

    shard: int
    leader: Optional[int]
    applied: int
    instances: int
    commands_per_instance: float
    consistent: bool


@dataclasses.dataclass(frozen=True)
class ServiceSummary:
    """Whole-service metrics over a run of *duration* virtual time units."""

    duration: float
    num_shards: int
    batch_size: int
    committed: int
    instances: int
    commands_per_instance: float
    throughput: float
    latency: LatencyStats
    completed: int
    retries: int
    per_shard: List[ShardReport]
    #: Snapshot/compaction accounting (0 when the service runs without a
    #: compaction policy); peak_decided_residency is the bounded-memory metric.
    snapshots_taken: int = 0
    positions_compacted: int = 0
    peak_decided_residency: int = 0

    @staticmethod
    def row_headers() -> List[str]:
        return [
            "shards",
            "batch",
            "committed",
            "instances",
            "cmds/inst",
            "throughput",
            "p50_lat",
            "p95_lat",
            "retries",
        ]

    def as_row(self) -> List[object]:
        return [
            self.num_shards,
            self.batch_size,
            self.committed,
            self.instances,
            round(self.commands_per_instance, 3),
            round(self.throughput, 3),
            round(self.latency.p50, 3),
            round(self.latency.p95, 3),
            self.retries,
        ]


def summarize_service(service, clients=(), duration: Optional[float] = None) -> ServiceSummary:
    """Summarise a finished (or paused) service run.

    Parameters
    ----------
    service:
        A :class:`~repro.service.sharding.ShardedService`.
    clients:
        The closed-loop clients that drove the run (latency/retry accounting);
        may be empty when commands were submitted directly.
    duration:
        Virtual-time denominator for throughput (defaults to ``service.now``).
    """
    span = duration if duration is not None else service.now
    require_positive(span, "duration")
    per_shard: List[ShardReport] = []
    leaders = service.leaders()
    for shard in range(service.num_shards):
        applied = service.applied_commands(shard)
        instances = service.decided_instances(shard)
        per_shard.append(
            ShardReport(
                shard=shard,
                leader=leaders[shard],
                applied=applied,
                instances=instances,
                commands_per_instance=applied / instances if instances else 0.0,
                consistent=len(set(service.state_digests(shard))) == 1,
            )
        )
    committed = sum(report.applied for report in per_shard)
    instances = sum(report.instances for report in per_shard)
    latencies: List[float] = []
    completed = 0
    retries = 0
    for client in clients:
        latencies.extend(client.stats.latencies)
        completed += client.stats.completed
        retries += client.stats.retries
    return ServiceSummary(
        duration=span,
        num_shards=service.num_shards,
        batch_size=service.batch_size,
        committed=committed,
        instances=instances,
        commands_per_instance=committed / instances if instances else 0.0,
        throughput=committed / span,
        latency=latency_stats(latencies),
        completed=completed,
        retries=retries,
        per_shard=per_shard,
        snapshots_taken=service.snapshots_taken(),
        positions_compacted=service.positions_compacted(),
        peak_decided_residency=service.peak_decided_residency(),
    )
