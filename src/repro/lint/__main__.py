"""Command-line entry point: ``python -m repro.lint src/``.

Exit codes: 0 — clean (every finding suppressed by a justified baseline entry
and no entry stale); 1 — unbaselined findings and/or stale baseline entries;
2 — usage errors (unknown rule, malformed baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.checkers import ALL_CHECKERS, run_checkers
from repro.lint.report import Baseline
from repro.lint.walker import build_model


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant linter (determinism, counter "
        "retirement, protocol completeness, hot-path slots, parallel safety).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories to scan"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed suppression baseline (JSON with justified entries)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="scaffold --baseline from the current findings and exit "
        "(justifications must then be edited in by hand)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the registered rules"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)

    if args.list_rules:
        for checker in ALL_CHECKERS:
            print(f"{checker.RULE_ID}  {checker.SUMMARY}")
        return 0

    select = args.select.split(",") if args.select else None
    try:
        model = build_model(args.paths)
        findings = run_checkers(model, select=select)
    except (FileNotFoundError, SyntaxError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if args.baseline is None:
            print("error: --write-baseline requires --baseline", file=sys.stderr)
            return 2
        Baseline.from_findings(findings).save(args.baseline)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    if args.baseline is not None and args.baseline.exists():
        try:
            baseline = Baseline.load(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        baseline = Baseline()

    new, suppressed, stale = baseline.partition(findings)
    for finding in new:
        print(finding.render())
    for entry in stale:
        print(
            f"{args.baseline}: stale baseline entry "
            f"{entry.rule} [{entry.symbol}] ({entry.path}) — the finding is "
            "gone; delete the entry"
        )
    scanned = len(model.modules)
    print(
        f"repro.lint: {scanned} module(s), {len(new)} finding(s), "
        f"{len(suppressed)} suppressed, {len(stale)} stale baseline entr(y/ies)"
    )
    return 1 if new or stale else 0


if __name__ == "__main__":
    raise SystemExit(main())
