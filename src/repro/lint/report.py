"""Findings and the committed suppression baseline.

A finding is identified by ``(rule, path, symbol)`` — deliberately *not* by
line number, so unrelated edits above a suppressed finding do not churn the
baseline.  The baseline is a committed JSON file in which every entry carries
a human-written justification; an entry that matches no current finding is
*stale* and fails the run, so fixed findings cannot linger suppressed.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    rule: str
    path: str
    line: int
    symbol: str
    message: str

    @property
    def key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching (line-number independent)."""
        return (self.rule, self.path, self.symbol)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.symbol}] {self.message}"


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One suppressed finding plus the reason it is acceptable."""

    rule: str
    path: str
    symbol: str
    justification: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)


class Baseline:
    """The committed set of justified suppressions."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = []
        seen: set = set()
        for entry in entries:
            if entry.key in seen:
                raise ValueError(f"duplicate baseline entry {entry.key}")
            seen.add(entry.key)
            self.entries.append(entry)

    # ------------------------------------------------------------------ round-trip --
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Parse and validate a baseline file; malformed entries fail loudly."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
            raise ValueError(f'{path}: expected an object with an "entries" list')
        entries = []
        for index, raw in enumerate(data["entries"]):
            if not isinstance(raw, dict):
                raise ValueError(f"{path}: entry {index} is not an object")
            unknown = sorted(set(raw) - {"rule", "path", "symbol", "justification"})
            if unknown:
                raise ValueError(f"{path}: entry {index} has unknown field(s) {unknown}")
            fields = {}
            for field in ("rule", "path", "symbol", "justification"):
                value = raw.get(field)
                if not isinstance(value, str) or not value.strip():
                    raise ValueError(
                        f"{path}: entry {index} needs a non-empty string {field!r}"
                        " (unjustified suppressions are not accepted)"
                    )
                fields[field] = value
            entries.append(BaselineEntry(**fields))
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "entries": [dataclasses.asdict(entry) for entry in self.entries]
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], justification: str = "TODO: justify"
    ) -> "Baseline":
        """Scaffold a baseline from current findings (justifications to be edited)."""
        entries = []
        seen: set = set()
        for finding in findings:
            if finding.key in seen:
                continue
            seen.add(finding.key)
            entries.append(
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    symbol=finding.symbol,
                    justification=justification,
                )
            )
        return cls(entries)

    # ------------------------------------------------------------------ matching --
    def partition(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into ``(new, suppressed)`` and return stale entries.

        A baseline entry may match several findings (the same symbol flagged at
        two lines); it is stale only when it matches none.
        """
        by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
            entry.key: entry for entry in self.entries
        }
        matched: set = set()
        new: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            if finding.key in by_key:
                matched.add(finding.key)
                suppressed.append(finding)
            else:
                new.append(finding)
        stale = [entry for entry in self.entries if entry.key not in matched]
        return new, suppressed, stale


__all__ = ["Baseline", "BaselineEntry", "Finding"]
