"""One-pass AST project model shared by every checker.

The walker parses every ``*.py`` file under the scanned paths once and distils
the facts the rules dispatch on: classes (bases, decorators, ``__slots__``,
attribute assignments, monotone-counter increments), functions and methods
(call edges by simple name, nested lambdas/defs), and per-module import alias
maps.  Checkers never re-parse source; they query this model.

The model is deliberately *name-based*, not type-based: call edges connect a
call site to every function of the same simple name anywhere in the project.
That over-approximation errs toward false positives, which is the right
direction for an invariant linter backed by a justified suppression baseline.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Annotation substrings marking an attribute / field as set-typed.
_SET_HINTS = ("Set[", "set[", "FrozenSet[", "frozenset[")


# ------------------------------------------------------------------ data model --
@dataclasses.dataclass
class CounterIncrement:
    """One ``self.<name> += <positive const>`` (or dict-slot ``self.<name>[k] +=``)."""

    name: str
    lineno: int
    subscripted: bool


@dataclasses.dataclass(eq=False)
class FunctionInfo:
    """One function or method (the unit of the name-based call graph)."""

    name: str
    qualname: str
    lineno: int
    node: ast.AST
    module: "ModuleInfo"
    #: Simple names this body calls (``foo()`` -> ``foo``; ``x.bar()`` -> ``bar``).
    called_names: Set[str] = dataclasses.field(default_factory=set)
    #: Line numbers of lambdas / nested ``def`` allocated inside the body.
    nested_callables: List[int] = dataclasses.field(default_factory=list)
    #: Names of the nested ``def``\ s (closure candidates for PKL005).
    nested_def_names: Set[str] = dataclasses.field(default_factory=set)


@dataclasses.dataclass(eq=False)
class ClassInfo:
    """One class definition with the facts the rules dispatch on."""

    name: str
    lineno: int
    node: ast.ClassDef
    module: "ModuleInfo"
    base_names: List[str] = dataclasses.field(default_factory=list)
    #: Dotted decorator names (``dataclasses.dataclass`` -> that string).
    decorator_names: List[str] = dataclasses.field(default_factory=list)
    #: True for a class-body ``__slots__`` or a ``@dataclass(slots=True)``.
    has_slots: bool = False
    methods: Dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    counter_increments: List[CounterIncrement] = dataclasses.field(default_factory=list)
    #: ``self.<name> = ...`` assignment counts outside ``__init__``/``__post_init__``
    #: (a name reassigned there is protocol state, not a monotone counter).
    reassigned_attrs: Set[str] = dataclasses.field(default_factory=set)
    #: Attributes initialised as ``set()``/``frozenset()`` or annotated as sets.
    set_typed_attrs: Set[str] = dataclasses.field(default_factory=set)


@dataclasses.dataclass(eq=False)
class ModuleInfo:
    """One parsed source file."""

    path: Path
    #: Posix-style path as reported in findings (relative to the CWD when possible).
    relpath: str
    tree: ast.Module
    classes: Dict[str, ClassInfo] = dataclasses.field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    #: Local name -> dotted origin (``import random`` -> ``random``;
    #: ``from time import time`` -> ``time.time``).
    imports: Dict[str, str] = dataclasses.field(default_factory=dict)

    def matches(self, *suffixes: str) -> bool:
        """True when the module path ends with one of the posix *suffixes*."""
        return any(self.relpath.endswith(suffix) for suffix in suffixes)


class ProjectModel:
    """All parsed modules plus the cross-module indexes checkers query."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        for function in self.iter_functions():
            self.functions_by_name.setdefault(function.name, []).append(function)

    # ------------------------------------------------------------------ iteration --
    def iter_classes(self) -> Iterator[ClassInfo]:
        for module in self.modules.values():
            yield from module.classes.values()

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every top-level function and method of every module."""
        for module in self.modules.values():
            yield from module.functions.values()
            for cls in module.classes.values():
                yield from cls.methods.values()

    # ------------------------------------------------------------------ call graph --
    def reachable_functions(self, roots: Iterable[FunctionInfo]) -> Set[FunctionInfo]:
        """Name-based closure: everything callable (transitively) from *roots*.

        Conservative by construction — a call to ``digest`` reaches every
        ``digest`` in the project — so rules applied to the reachable set
        over- rather than under-report.
        """
        reached: Set[FunctionInfo] = set()
        frontier = list(roots)
        while frontier:
            function = frontier.pop()
            if function in reached:
                continue
            reached.add(function)
            for called in function.called_names:
                frontier.extend(self.functions_by_name.get(called, ()))
        return reached


# ------------------------------------------------------------------ AST helpers --
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_dotted(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Like :func:`dotted_name`, with the leading segment resolved via *imports*.

    ``from time import time`` makes a bare ``time(...)`` resolve to
    ``time.time``; ``import repro.util.parallel as rp`` makes ``rp.run_tasks``
    resolve to ``repro.util.parallel.run_tasks``.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = imports.get(head, head)
    return f"{origin}.{rest}" if rest else origin


def _is_set_annotation(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation)
    return any(hint in text for hint in _SET_HINTS)


def _is_set_constructor(value: ast.AST) -> bool:
    if isinstance(value, ast.Set):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in ("set", "frozenset")
    return False


# ------------------------------------------------------------------ collection --
def _collect_function(
    node: ast.AST, qualname: str, module: ModuleInfo
) -> FunctionInfo:
    """Distil one ``def``: call names and nested callables (not into nested defs)."""
    info = FunctionInfo(
        name=node.name, qualname=qualname, lineno=node.lineno, node=node, module=module
    )
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.nested_callables.append(child.lineno)
            info.nested_def_names.add(child.name)
            # Calls inside a nested def still count as reachable from here.
        elif isinstance(child, ast.Lambda):
            info.nested_callables.append(child.lineno)
        elif isinstance(child, ast.Call):
            name = None
            if isinstance(child.func, ast.Name):
                name = child.func.id
            elif isinstance(child.func, ast.Attribute):
                name = child.func.attr
            if name is not None:
                info.called_names.add(name)
        stack.extend(ast.iter_child_nodes(child))
    return info


#: AugAssign values counting as a monotone bump.
def _is_positive_const(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
        and node.value > 0
    )


def _collect_class(node: ast.ClassDef, module: ModuleInfo) -> ClassInfo:
    info = ClassInfo(name=node.name, lineno=node.lineno, node=node, module=module)
    for base in node.bases:
        base_dotted = dotted_name(base)
        if base_dotted is not None:
            info.base_names.append(base_dotted.rsplit(".", 1)[-1])
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        decorated = dotted_name(target)
        if decorated is not None:
            info.decorator_names.append(decorated)
        if (
            isinstance(decorator, ast.Call)
            and decorated is not None
            and decorated.rsplit(".", 1)[-1] == "dataclass"
        ):
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    info.has_slots = True

    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    info.has_slots = True
        elif isinstance(statement, ast.AnnAssign):
            # Dataclass field annotations double as attribute types.
            if isinstance(statement.target, ast.Name) and _is_set_annotation(
                statement.annotation
            ):
                info.set_typed_attrs.add(statement.target.id)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = _collect_function(
                statement, f"{node.name}.{statement.name}", module
            )
            info.methods[statement.name] = method
            _collect_attr_mutations(info, statement)
    return info


def _collect_attr_mutations(info: ClassInfo, method: ast.AST) -> None:
    """Record ``self.<name>`` increments, reassignments and set-typed inits."""
    in_init = method.name in ("__init__", "__post_init__")
    for node in ast.walk(method):
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            target = node.target
            subscripted = False
            if isinstance(target, ast.Subscript):
                target = target.value
                subscripted = True
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and not target.attr.startswith("_")
                and _is_positive_const(node.value)
            ):
                info.counter_increments.append(
                    CounterIncrement(
                        name=target.attr, lineno=node.lineno, subscripted=subscripted
                    )
                )
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if in_init:
                    if value is not None and _is_set_constructor(value):
                        info.set_typed_attrs.add(target.attr)
                    if isinstance(node, ast.AnnAssign) and _is_set_annotation(
                        node.annotation
                    ):
                        info.set_typed_attrs.add(target.attr)
                else:
                    info.reassigned_attrs.add(target.attr)


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            prefix = ("." * node.level) + (node.module or "")
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return imports


# ------------------------------------------------------------------ entry point --
def _python_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return files


def _relpath(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def build_model(paths: Iterable) -> ProjectModel:
    """Parse every python file under *paths* into a :class:`ProjectModel`."""
    modules: Dict[str, ModuleInfo] = {}
    for file in _python_files([Path(p) for p in paths]):
        source = file.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(file))
        module = ModuleInfo(path=file, relpath=_relpath(file), tree=tree)
        module.imports = _collect_imports(tree)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                module.classes[node.name] = _collect_class(node, module)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.functions[node.name] = _collect_function(
                    node, node.name, module
                )
        modules[module.relpath] = module
    return ProjectModel(modules)


__all__ = [
    "ClassInfo",
    "CounterIncrement",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "build_model",
    "dotted_name",
    "resolve_dotted",
]
