"""PKL005 — parallel safety: workers handed to a pool must be module-level.

:func:`repro.util.parallel.run_tasks` fans payloads out over a
``multiprocessing`` pool; the worker callable is pickled into each child, so
lambdas, closures (functions defined inside another function) and bound
methods fail — at best loudly at spawn time, at worst only on the one code
path that first crosses the pool.  PR 8 established the discipline (the shard
worker is a module-level function fed by a picklable payload dict); this rule
makes it mechanical.

Flagged first arguments to ``run_tasks`` (resolved through the module's
imports to ``repro.util.parallel.run_tasks``), to ``<pool>.map``-family
methods and to ``Process(target=...)``/``apply_async`` calls:

* a ``lambda`` expression;
* a name bound by a nested ``def`` in the enclosing function (a closure);
* a ``self.<method>`` bound method;
* ``functools.partial`` wrapping any of the above (checked recursively).
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.report import Finding
from repro.lint.walker import FunctionInfo, ModuleInfo, ProjectModel, resolve_dotted

RULE_ID = "PKL005"
SUMMARY = "non-module-level callable handed to run_tasks / a multiprocessing pool"
HISTORICAL_BUG = "PR 8: the parallel shard worker had to be made picklable by design"

#: Attribute methods that take a worker callable as their first argument.
_POOL_METHODS = ("map", "imap", "imap_unordered", "starmap", "apply_async")


def _worker_argument(call: ast.Call, module: ModuleInfo) -> Optional[ast.AST]:
    """The callable argument of a pool-style *call*, or None when out of scope."""
    dotted = resolve_dotted(call.func, module.imports)
    if dotted is not None and (
        dotted == "repro.util.parallel.run_tasks" or dotted == "run_tasks"
    ):
        return call.args[0] if call.args else None
    if isinstance(call.func, ast.Attribute) and call.func.attr in _POOL_METHODS:
        base = call.func.value
        base_name = base.id if isinstance(base, ast.Name) else None
        if (base_name is not None and "pool" in base_name.lower()) or (
            dotted is not None and dotted.startswith("multiprocessing.")
        ):
            return call.args[0] if call.args else None
    if dotted is not None and dotted.rsplit(".", 1)[-1] == "Process":
        for keyword in call.keywords:
            if keyword.arg == "target":
                return keyword.value
    return None


def _violation(
    argument: ast.AST, enclosing: Optional[FunctionInfo], module: ModuleInfo
) -> Optional[str]:
    """Describe why *argument* is not picklable, or None when it looks fine."""
    if isinstance(argument, ast.Lambda):
        return "a lambda cannot be pickled into pool workers"
    if isinstance(argument, ast.Attribute):
        if isinstance(argument.value, ast.Name) and argument.value.id == "self":
            return "a bound method drags its instance through pickle"
        return None
    if isinstance(argument, ast.Name):
        if enclosing is not None and argument.id in enclosing.nested_def_names:
            return (
                f"{argument.id!r} is defined inside {enclosing.qualname}(); "
                "a closure cannot be pickled — hoist it to module level"
            )
        return None
    if isinstance(argument, ast.Call):
        dotted = resolve_dotted(argument.func, module.imports)
        if dotted in ("functools.partial", "partial") and argument.args:
            return _violation(argument.args[0], enclosing, module)
    return None


def check(model: ProjectModel) -> List[Finding]:
    findings = []
    for module in model.modules.values():
        for function, nodes in _scopes(module):
            for node in nodes:
                if not isinstance(node, ast.Call):
                    continue
                argument = _worker_argument(node, module)
                if argument is None:
                    continue
                reason = _violation(argument, function, module)
                if reason is not None:
                    where = function.qualname if function is not None else "<module>"
                    findings.append(
                        Finding(
                            rule=RULE_ID,
                            path=module.relpath,
                            line=node.lineno,
                            symbol=f"{where}:worker",
                            message=reason,
                        )
                    )
    return findings


def _scopes(module: ModuleInfo):
    """``(enclosing function, nodes)`` pairs covering the module exactly once.

    Module-level statements are walked with no enclosing function; each
    function/method is walked as one scope (nested defs included, so closure
    names resolve against the outermost enclosing body).
    """
    toplevel = []
    for statement in module.tree.body:
        if not isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            toplevel.extend(ast.walk(statement))
    yield None, toplevel
    functions = list(module.functions.values())
    for cls in module.classes.values():
        functions.extend(cls.methods.values())
    for function in functions:
        yield function, list(ast.walk(function.node))
