"""DET001 — determinism: wall clock / ambient randomness / unsorted-set folds.

Seeded executions must be byte-identically reproducible (the run fingerprints
of :mod:`repro.fuzz` and the parallel-merge equality checks depend on it), so:

* all randomness flows through :class:`repro.util.rng.RandomSource` and all
  wall-clock reads through :mod:`repro.util.wallclock` — direct calls to
  ``random.*``, ``time.time``/``monotonic``/``perf_counter``, ``datetime.now``,
  ``os.urandom`` or ``uuid.uuid1/uuid4`` anywhere else are findings, as is
  ``id()`` used inside a ``sorted``/``sort`` call (CPython addresses vary
  between runs);
* no function reachable from a fingerprint/digest/merge fold may iterate a
  set without sorting it first — string hashes are randomised per process, so
  set order is the classic source of fingerprint drift (dicts iterate in
  insertion order and are not flagged).

Historical bug: the PR 8 parallel merge had to be built order-independent by
hand; this rule keeps every later fold honest.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.report import Finding
from repro.lint.walker import FunctionInfo, ProjectModel, resolve_dotted

RULE_ID = "DET001"
SUMMARY = "ambient nondeterminism (wall clock, global RNG, unsorted-set folds)"
HISTORICAL_BUG = (
    "hand-audited order independence of the PR 8 parallel merge and the fuzz "
    "run fingerprints"
)

#: Modules allowed to touch the ambient sources (the sanctioned wrappers).
ALLOWED_MODULE_SUFFIXES = ("util/rng.py", "util/wallclock.py")

#: Dotted call names that leak wall-clock or process-random state.
BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Function-name markers of fingerprint/digest/merge folds (rule scope (b)).
_FOLD_MARKERS = ("digest", "fingerprint", "merge")


# ------------------------------------------------------------------ part (a) --
def _banned_call_findings(model: ProjectModel) -> List[Finding]:
    findings = []
    for module in model.modules.values():
        if module.matches(*ALLOWED_MODULE_SUFFIXES):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, module.imports)
            if dotted is None:
                continue
            if dotted in BANNED_CALLS or dotted.startswith("random."):
                findings.append(
                    Finding(
                        rule=RULE_ID,
                        path=module.relpath,
                        line=node.lineno,
                        symbol=dotted,
                        message=(
                            f"direct {dotted}() call; route randomness through "
                            "util/rng.py and wall-clock reads through "
                            "util/wallclock.py"
                        ),
                    )
                )
            elif dotted == "sorted" or dotted.endswith(".sort"):
                if _uses_id(node):
                    findings.append(
                        Finding(
                            rule=RULE_ID,
                            path=module.relpath,
                            line=node.lineno,
                            symbol="id-in-sort",
                            message=(
                                "id() used as a sort ingredient; object "
                                "addresses vary between runs"
                            ),
                        )
                    )
    return findings


def _uses_id(call: ast.Call) -> bool:
    """True when the builtin ``id`` appears anywhere in the call's arguments."""
    for argument in list(call.args) + [kw.value for kw in call.keywords]:
        for inner in ast.walk(argument):
            if isinstance(inner, ast.Name) and inner.id == "id":
                return True
    return False


# ------------------------------------------------------------------ part (b) --
def _set_typed_attrs(model: ProjectModel) -> Set[str]:
    attrs: Set[str] = set()
    for cls in model.iter_classes():
        attrs.update(cls.set_typed_attrs)
    return attrs


def _is_set_expr(node: ast.AST, local_sets: Set[str], set_attrs: Set[str]) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.Name):
        return node.id in local_sets
    if isinstance(node, ast.Attribute):
        # ``self.X`` / ``obj.X`` where any class in the project types X as a set.
        return node.attr in set_attrs
    return False


def _unsorted_set_sites(function: FunctionInfo, set_attrs: Set[str]) -> List[int]:
    """Line numbers iterating a set-valued expression outside ``sorted(...)``.

    Covers ``for`` loops and comprehension generators; a set handed to
    ``sorted``/``min``/``max``/``sum``/``len`` is order-insensitive and is
    naturally not flagged (those are calls, not iteration sites).
    """
    local_sets: Set[str] = set()
    for node in ast.walk(function.node):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, local_sets, set_attrs):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local_sets.add(target.id)
    sites: List[int] = []
    for node in ast.walk(function.node):
        if isinstance(node, ast.For):
            iterables = [node.iter]
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            iterables = [gen.iter for gen in node.generators]
        else:
            continue
        for iterable in iterables:
            if _is_set_expr(iterable, local_sets, set_attrs):
                sites.append(iterable.lineno)
    return sites


def _fold_findings(model: ProjectModel) -> List[Finding]:
    roots = [
        function
        for function in model.iter_functions()
        if any(marker in function.name.lower() for marker in _FOLD_MARKERS)
    ]
    set_attrs = _set_typed_attrs(model)
    findings = []
    for function in sorted(
        model.reachable_functions(roots),
        key=lambda f: (f.module.relpath, f.lineno),
    ):
        for line in _unsorted_set_sites(function, set_attrs):
            findings.append(
                Finding(
                    rule=RULE_ID,
                    path=function.module.relpath,
                    line=line,
                    symbol=f"{function.qualname}:unsorted-set",
                    message=(
                        "set iterated without sorted() inside a function "
                        "reachable from a fingerprint/digest/merge fold"
                    ),
                )
            )
    return findings


def check(model: ProjectModel) -> List[Finding]:
    return _banned_call_findings(model) + _fold_findings(model)
