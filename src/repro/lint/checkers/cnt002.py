"""CNT002 — counter retirement: every replica counter must survive recovery.

When a process recovers, :meth:`repro.simulation.process.SimProcessShell.recover`
harvests the dying incarnation's ``lifetime_counters()`` into
``retired_counters`` so whole-run accounting stays monotone.  A counter that a
replica/stack/log/lease class increments but never exposes through a
``lifetime_counters``/``counters``/``perf_counters`` merge silently resets to
zero at every restart — exactly the bug shipped (and hand-fixed) in PR 5 and
again in PR 7.

Scope: classes whose name mentions Replica/Stack/Log/Lease/Omega, outside the
paper-baseline package (``baselines/`` algorithms predate the recovery model
and are exercised crash-stop only).  A *counter* is a non-underscore attribute
whose only mutations are ``self.<name> += <positive const>`` bumps (plain or
dict-slot) — an attribute also plainly reassigned outside ``__init__`` is
protocol state, not a counter.  Coverage is satisfied when the attribute name
is referenced (as an attribute or string key) inside *any* counters-merge
method in the project, which models cross-class harvests such as the stack
folding the oracle's counters in.
"""

from __future__ import annotations

import ast
import re
from typing import List, Set

from repro.lint.report import Finding
from repro.lint.walker import ProjectModel

RULE_ID = "CNT002"
SUMMARY = "counter incremented by a replica class but absent from every counters merge"
HISTORICAL_BUG = "PR 5 / PR 7: counters silently reset by crash-recovery harvests"

#: Class names subject to the counter-retirement discipline.
SCOPED_CLASS_NAME = re.compile(r"Replica|Stack|Log|Lease|Omega")

#: Module path fragments excluded from the rule.
EXCLUDED_PATH_FRAGMENTS = ("baselines/", "consensus/messages.py")

#: Methods recognised as counters merges.
MERGE_METHOD_NAMES = ("lifetime_counters", "counters", "perf_counters")


def _exported_names(model: ProjectModel) -> Set[str]:
    """Attribute tails and string keys referenced inside any counters merge."""
    names: Set[str] = set()
    for cls in model.iter_classes():
        for method_name in MERGE_METHOD_NAMES:
            method = cls.methods.get(method_name)
            if method is None:
                continue
            for node in ast.walk(method.node):
                if isinstance(node, ast.Attribute):
                    names.add(node.attr)
                elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                    names.add(node.value)
    return names


def check(model: ProjectModel) -> List[Finding]:
    exported = _exported_names(model)
    findings = []
    for cls in model.iter_classes():
        if not SCOPED_CLASS_NAME.search(cls.name):
            continue
        if any(fragment in cls.module.relpath for fragment in EXCLUDED_PATH_FRAGMENTS):
            continue
        reported: Set[str] = set()
        for increment in cls.counter_increments:
            name = increment.name
            if name in reported or name in cls.reassigned_attrs:
                continue
            if name in exported:
                continue
            reported.add(name)
            findings.append(
                Finding(
                    rule=RULE_ID,
                    path=cls.module.relpath,
                    line=increment.lineno,
                    symbol=f"{cls.name}.{name}",
                    message=(
                        f"counter {name!r} is incremented but reachable from no "
                        "lifetime_counters/counters merge; it resets to zero on "
                        "crash-recovery"
                    ),
                )
            )
    return findings
