"""SLT004 — hot-path allocation: ``__slots__`` and closure-free event code.

The simulator's throughput lives and dies on per-event allocation cost (the
PR 2 event-core design and the PR 8 hot-path pass).  Classes instantiated per
event/message — everything defined in ``simulation/events.py``,
``simulation/scheduler.py``, ``simulation/network.py`` and
``consensus/messages.py`` — must declare ``__slots__`` (a class-body
assignment or ``@dataclass(slots=True)``), and no function in those modules
may allocate a lambda or nested ``def`` per call (closures allocate a cell +
function object on every execution of the enclosing body).

Per-run singletons (the scheduler, the network, the event queue) gain nothing
from slots; they are suppressed in the committed baseline with that
justification rather than special-cased here — the rule stays mechanical.
"""

from __future__ import annotations

import re
from typing import List

from repro.lint.report import Finding
from repro.lint.walker import ProjectModel

RULE_ID = "SLT004"
SUMMARY = "hot-path class without __slots__ / per-call lambda allocation"
HISTORICAL_BUG = "PR 2 / PR 8: per-event dict allocations dominated the hot loop"

#: Modules whose classes are instantiated on the per-event hot path.
SCOPED_MODULE = re.compile(
    r"(^|/)(simulation/(events|scheduler|network)|consensus/messages)\.py$"
)


def check(model: ProjectModel) -> List[Finding]:
    findings = []
    for module in model.modules.values():
        if not SCOPED_MODULE.search(module.relpath):
            continue
        for cls in module.classes.values():
            if not cls.has_slots:
                findings.append(
                    Finding(
                        rule=RULE_ID,
                        path=module.relpath,
                        line=cls.lineno,
                        symbol=cls.name,
                        message=(
                            f"hot-path class {cls.name} declares no __slots__; "
                            "each instance allocates a dict"
                        ),
                    )
                )
            functions = list(cls.methods.values())
            for function in functions:
                for line in function.nested_callables:
                    findings.append(
                        Finding(
                            rule=RULE_ID,
                            path=module.relpath,
                            line=line,
                            symbol=f"{function.qualname}:closure",
                            message=(
                                "lambda/nested def allocated inside a hot-path "
                                "body; hoist it to module level"
                            ),
                        )
                    )
        for function in module.functions.values():
            for line in function.nested_callables:
                findings.append(
                    Finding(
                        rule=RULE_ID,
                        path=module.relpath,
                        line=line,
                        symbol=f"{function.qualname}:closure",
                        message=(
                            "lambda/nested def allocated inside a hot-path "
                            "body; hoist it to module level"
                        ),
                    )
                )
    return findings
