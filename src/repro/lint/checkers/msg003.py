"""MSG003 — protocol completeness: dispatch arms and the fault-event registry.

Two registries must stay total:

* every protocol message class defined in ``consensus/messages.py`` (a
  ``Message`` subclass) must appear in an ``isinstance`` dispatch arm of the
  consensus layer (``replicated_log.py``, ``stack.py`` or ``instance.py``) —
  a message that is constructed and sent but never dispatched is silently
  dropped by the receiver's fallthrough;
* the ``EVENT_KINDS`` wire registry in ``faults.py`` must be a bijection with
  the ``FaultEvent`` subclasses defined there (private ``_``-prefixed
  intermediates excluded), and every registered class must be a dataclass so
  the generic ``event_to_dict``/``event_from_dict`` field walk covers all of
  its fields.  An unregistered subclass serializes as a loud ``TypeError`` at
  corpus-save time — after the fuzz campaign already ran.

Historical bug: the PR 9 lease messages grew dispatch arms one by one; a
missed arm surfaced only as a liveness stall under fault schedules.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.lint.report import Finding
from repro.lint.walker import ClassInfo, ModuleInfo, ProjectModel

RULE_ID = "MSG003"
SUMMARY = "message class without a dispatch arm / fault event outside EVENT_KINDS"
HISTORICAL_BUG = "PR 9: lease/read-index messages needed hand-tracked dispatch arms"

#: Where protocol message classes live.
MESSAGE_MODULE_SUFFIX = "consensus/messages.py"

#: Modules whose ``isinstance`` checks count as dispatch arms.
DISPATCH_MODULE_SUFFIXES = (
    "consensus/replicated_log.py",
    "consensus/stack.py",
    "consensus/instance.py",
)

#: Where the fault-event wire registry lives.
FAULTS_MODULE_SUFFIX = "faults.py"


# ------------------------------------------------------------------ messages --
def _dispatched_names(model: ProjectModel) -> Set[str]:
    """Class names appearing as the second argument of ``isinstance`` checks."""
    names: Set[str] = set()
    for module in model.modules.values():
        if not module.matches(*DISPATCH_MODULE_SUFFIXES):
            continue
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2
            ):
                continue
            spec = node.args[1]
            elements = spec.elts if isinstance(spec, ast.Tuple) else [spec]
            for element in elements:
                if isinstance(element, ast.Name):
                    names.add(element.id)
                elif isinstance(element, ast.Attribute):
                    names.add(element.attr)
    return names


def _message_findings(model: ProjectModel) -> List[Finding]:
    dispatched = _dispatched_names(model)
    findings = []
    for module in model.modules.values():
        if not module.matches(MESSAGE_MODULE_SUFFIX):
            continue
        for cls in module.classes.values():
            if "Message" not in cls.base_names:
                continue
            if cls.name not in dispatched:
                findings.append(
                    Finding(
                        rule=RULE_ID,
                        path=module.relpath,
                        line=cls.lineno,
                        symbol=cls.name,
                        message=(
                            f"message {cls.name} has no isinstance dispatch arm in "
                            "replicated_log.py/stack.py/instance.py; receivers "
                            "drop it silently"
                        ),
                    )
                )
    return findings


# ------------------------------------------------------------------ fault events --
def _fault_event_classes(module: ModuleInfo) -> Dict[str, ClassInfo]:
    """``FaultEvent`` subclasses of *module*, transitively, excluding the root."""
    subclasses: Dict[str, ClassInfo] = {}
    grew = True
    while grew:
        grew = False
        for cls in module.classes.values():
            if cls.name in subclasses:
                continue
            if "FaultEvent" in cls.base_names or any(
                base in subclasses for base in cls.base_names
            ):
                subclasses[cls.name] = cls
                grew = True
    return subclasses


def _registered_names(module: ModuleInfo) -> Set[str]:
    """Class names registered as values of the ``EVENT_KINDS`` dict literal."""
    names: Set[str] = set()
    for node in module.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "EVENT_KINDS"
            for target in targets
        ):
            continue
        if isinstance(value, ast.Dict):
            for entry in value.values:
                if isinstance(entry, ast.Name):
                    names.add(entry.id)
    return names


def _fault_findings(model: ProjectModel) -> List[Finding]:
    findings = []
    for module in model.modules.values():
        if not module.matches(FAULTS_MODULE_SUFFIX):
            continue
        registered = _registered_names(module)
        if not registered:
            continue  # No registry in this faults.py: nothing to cross-check.
        subclasses = _fault_event_classes(module)
        for name, cls in sorted(subclasses.items()):
            if name.startswith("_"):
                continue  # Private intermediates are not wire kinds.
            if name not in registered:
                findings.append(
                    Finding(
                        rule=RULE_ID,
                        path=module.relpath,
                        line=cls.lineno,
                        symbol=name,
                        message=(
                            f"FaultEvent subclass {name} is missing from "
                            "EVENT_KINDS; serialized plans cannot carry it"
                        ),
                    )
                )
            elif not any(
                decorator.rsplit(".", 1)[-1] == "dataclass"
                for decorator in cls.decorator_names
            ):
                findings.append(
                    Finding(
                        rule=RULE_ID,
                        path=module.relpath,
                        line=cls.lineno,
                        symbol=name,
                        message=(
                            f"registered fault event {name} is not a dataclass; "
                            "event_to_dict/event_from_dict walk dataclass fields "
                            "and would miss its state"
                        ),
                    )
                )
        for name in sorted(registered - set(subclasses)):
            findings.append(
                Finding(
                    rule=RULE_ID,
                    path=module.relpath,
                    line=1,
                    symbol=name,
                    message=(
                        f"EVENT_KINDS registers {name}, which is not a FaultEvent "
                        "subclass defined in this module"
                    ),
                )
            )
    return findings


def check(model: ProjectModel) -> List[Finding]:
    return _message_findings(model) + _fault_findings(model)
