"""Checker registry: one module per rule.

Every checker module exposes ``RULE_ID`` (e.g. ``DET001``), ``SUMMARY`` (one
line, shown by ``--list-rules`` and cross-checked against the ARCHITECTURE.md
rule table by ``scripts/check_docs.py``), ``HISTORICAL_BUG`` (the shipped bug
class the rule mechanises) and ``check(model) -> List[Finding]``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.lint.checkers import cnt002, det001, msg003, pkl005, slt004
from repro.lint.report import Finding
from repro.lint.walker import ProjectModel

#: All registered checkers, in rule-id order.
ALL_CHECKERS = (det001, cnt002, msg003, slt004, pkl005)

#: Rule id -> checker module.
RULES: Dict[str, object] = {checker.RULE_ID: checker for checker in ALL_CHECKERS}


def run_checkers(
    model: ProjectModel, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run the selected (default: all) checkers; findings sorted by site."""
    if select is None:
        checkers = ALL_CHECKERS
    else:
        unknown = sorted(set(select) - set(RULES))
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
        checkers = tuple(RULES[rule] for rule in sorted(set(select)))
    findings: List[Finding] = []
    for checker in checkers:
        findings.extend(checker.check(model))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.symbol))


__all__ = ["ALL_CHECKERS", "RULES", "run_checkers"]
