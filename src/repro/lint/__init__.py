"""Invariant linter for the reproduction's own correctness disciplines.

Generic lint (unused imports, style, bugbear) is outsourced to ``ruff``; this
package checks the invariants no off-the-shelf tool knows about — the bug
classes this repository has actually shipped and fixed by hand:

* **DET001** — seeded runs must be byte-identically reproducible, so direct
  wall-clock/randomness sources are confined to ``util/rng.py`` and
  ``util/wallclock.py``, and no fingerprint/digest/merge fold may iterate an
  unsorted set.
* **CNT002** — every monotone counter incremented by a replica/stack/log/lease
  class must be reachable from a ``lifetime_counters``/``counters`` merge, or
  it silently resets on crash-recovery (the PR 5 / PR 7 bug class).
* **MSG003** — every protocol message class has a dispatch arm, and the fault
  event registry (``EVENT_KINDS``) is a bijection with the ``FaultEvent``
  subclasses.
* **SLT004** — per-event classes on the simulator hot path declare
  ``__slots__`` and allocate no lambdas/closures (the PR 2 / PR 8 discipline).
* **PKL005** — callables handed to :func:`repro.util.parallel.run_tasks` or a
  multiprocessing pool must be module-level (picklable), matching the PR 8
  worker discipline.

Entry point::

    python -m repro.lint src/ --baseline lint_baseline.json

The model is built once per run (:mod:`repro.lint.walker`), each checker is a
module under :mod:`repro.lint.checkers`, and accepted findings live in a
committed suppression baseline with per-entry justifications
(:mod:`repro.lint.report`).
"""

from __future__ import annotations

from repro.lint.checkers import ALL_CHECKERS, RULES, run_checkers
from repro.lint.report import Baseline, BaselineEntry, Finding
from repro.lint.walker import ProjectModel, build_model

__all__ = [
    "ALL_CHECKERS",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ProjectModel",
    "RULES",
    "build_model",
    "run_checkers",
]
