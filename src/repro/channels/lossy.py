"""Fair-lossy link models.

The paper's base model assumes reliable links but notes (footnote 2, Section 7)
that fair-lossy links suffice if messages are acknowledged and retransmitted
(piggybacked) until acknowledged.  The delay models below introduce message loss on
top of any existing delay model; the :class:`~repro.channels.reliable.ReliableChannel`
process wrapper then rebuilds reliable links above them, and the integration tests
check that the Figure 3 algorithm still elects a leader over that stack.

*Fairness* (a message retransmitted for ever is eventually received) is guaranteed
either statistically (:class:`BernoulliLossModel`, loss probability < 1) or
deterministically (:class:`PeriodicLossModel`, which never drops two consecutive
transmissions of the same link).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.simulation.delays import DelayModel, MessageContext
from repro.util.rng import RandomSource
from repro.util.validation import require_in_range


class BernoulliLossModel(DelayModel):
    """Drop each message independently with probability *loss_probability*.

    Acknowledgement messages can be exempted (``protect_acks``) to model asymmetric
    loss; by default they are subject to the same loss.
    """

    def __init__(
        self,
        base: DelayModel,
        loss_probability: float,
        seed: int,
        protect_acks: bool = False,
    ) -> None:
        require_in_range(loss_probability, "loss_probability", 0.0, 1.0, high_inclusive=False)
        self.base = base
        self.loss_probability = loss_probability
        self.protect_acks = protect_acks
        self._rng = RandomSource(seed, label="bernoulli-loss")

    def delay(self, ctx: MessageContext) -> Optional[float]:
        if not (self.protect_acks and ctx.tag == "ACK"):
            if self._rng.random() < self.loss_probability:
                return None
        return self.base.delay(ctx)

    def describe(self) -> str:
        return f"bernoulli-loss(p={self.loss_probability}, base={self.base.describe()})"


class PeriodicLossModel(DelayModel):
    """Drop every *period*-th message of each directed link (deterministic fairness).

    With ``period = k``, exactly one out of every ``k`` messages of a link is lost,
    so retransmitting a message twice always gets it through — handy for
    deterministic unit tests of the reliable channel.
    """

    def __init__(self, base: DelayModel, period: int) -> None:
        if period < 2:
            raise ValueError(f"period must be >= 2, got {period}")
        self.base = base
        self.period = period
        self._counters: Dict[Tuple[int, int], int] = {}

    def delay(self, ctx: MessageContext) -> Optional[float]:
        key = (ctx.sender, ctx.dest)
        count = self._counters.get(key, 0) + 1
        self._counters[key] = count
        if count % self.period == 0:
            return None
        return self.base.delay(ctx)

    def describe(self) -> str:
        return f"periodic-loss(every {self.period}th, base={self.base.describe()})"
