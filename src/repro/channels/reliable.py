"""Reliable channel built over fair-lossy links (footnote 2 of the paper).

:class:`ReliableChannel` wraps any :class:`~repro.core.interfaces.Process` and turns
the fair-lossy links provided by the network into reliable ones, exactly the
acknowledgement + retransmission construction the paper sketches:

* every outgoing message is assigned a per-destination sequence number and sent
  inside a :class:`~repro.channels.messages.Data` envelope;
* unacknowledged envelopes are retransmitted periodically (the paper piggybacks them
  on later messages; periodic retransmission has the same fairness argument and
  keeps message sizes bounded);
* the receiver acknowledges every envelope and delivers each sequence number to the
  wrapped process exactly once (duplicates produced by retransmissions are dropped).

The wrapped process is completely unaware of the channel: it sees an ordinary
:class:`~repro.core.interfaces.Environment`.  Links remain non-FIFO, exactly like
the paper's reliable links.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Set, Tuple

from repro.channels.messages import Ack, Data
from repro.core.interfaces import Environment, Message, Process, TimerHandle
from repro.util.rng import RandomSource
from repro.util.validation import require_positive

_RETRANSMIT_TIMER = "retransmit"
_INNER_PREFIX = "inner:"


class _ChannelEnvironment(Environment):
    """Environment handed to the wrapped process: sends go through the channel."""

    def __init__(self, channel: "ReliableChannel", outer: Environment) -> None:
        self._channel = channel
        self._outer = outer

    @property
    def pid(self) -> int:
        return self._outer.pid

    @property
    def process_ids(self) -> Sequence[int]:
        return self._outer.process_ids

    @property
    def now(self) -> float:
        return self._outer.now

    def send(self, dest: int, message: Message) -> None:
        self._channel.reliable_send(self._outer, dest, message)

    def set_timer(self, delay: float, name: str, payload: Any = None) -> TimerHandle:
        return self._outer.set_timer(delay, _INNER_PREFIX + name, payload)

    def cancel_timer(self, handle: TimerHandle) -> None:
        self._outer.cancel_timer(handle)

    @property
    def random(self) -> RandomSource:
        return self._outer.random

    def log(self, kind: str, **details: Any) -> None:
        self._outer.log(kind, **details)


class ReliableChannel(Process):
    """Acknowledge-and-retransmit layer turning fair-lossy links into reliable ones."""

    variant_name = "reliable-channel"

    def __init__(self, inner: Process, retransmit_period: float = 2.0) -> None:
        require_positive(retransmit_period, "retransmit_period")
        self.inner = inner
        self.retransmit_period = retransmit_period
        #: Next sequence number per destination.
        self._next_seq: Dict[int, int] = {}
        #: Unacknowledged envelopes: (dest, seq) -> Data.
        self._outbox: Dict[Tuple[int, int], Data] = {}
        #: Sequence numbers already delivered, per sender (duplicate suppression).
        self._delivered: Dict[int, Set[int]] = {}
        #: Counters for tests and reports.
        self.retransmissions = 0
        self.duplicates_dropped = 0
        self._inner_env: Dict[int, _ChannelEnvironment] = {}

    # ------------------------------------------------------------------ helpers --
    def _env_for(self, env: Environment) -> _ChannelEnvironment:
        wrapped = self._inner_env.get(env.pid)
        if wrapped is None or wrapped._outer is not env:
            wrapped = _ChannelEnvironment(self, env)
            self._inner_env[env.pid] = wrapped
        return wrapped

    def reliable_send(self, env: Environment, dest: int, message: Message) -> None:
        """Send *message* to *dest* reliably (assign a sequence number, track it)."""
        seq = self._next_seq.get(dest, 0) + 1
        self._next_seq[dest] = seq
        envelope = Data(seq=seq, inner=message)
        self._outbox[(dest, seq)] = envelope
        env.send(dest, envelope)

    @property
    def unacknowledged(self) -> int:
        """Number of envelopes currently awaiting acknowledgement."""
        return len(self._outbox)

    # ------------------------------------------------------------------ lifecycle --
    def on_start(self, env: Environment) -> None:
        env.set_timer(self.retransmit_period, _RETRANSMIT_TIMER)
        self.inner.on_start(self._env_for(env))

    def on_timer(self, env: Environment, timer: TimerHandle) -> None:
        if timer.name == _RETRANSMIT_TIMER:
            for (dest, _seq), envelope in list(self._outbox.items()):
                self.retransmissions += 1
                env.send(dest, envelope)
            env.set_timer(self.retransmit_period, _RETRANSMIT_TIMER)
            return
        if timer.name.startswith(_INNER_PREFIX):
            inner_timer = TimerHandle(
                name=timer.name[len(_INNER_PREFIX):],
                fires_at=timer.fires_at,
                payload=timer.payload,
                cancelled=timer.cancelled,
                timer_id=timer.timer_id,
            )
            self.inner.on_timer(self._env_for(env), inner_timer)
            return
        raise ValueError(f"unknown timer {timer.name!r}")

    def on_message(self, env: Environment, sender: int, message: Message) -> None:
        if isinstance(message, Ack):
            self._outbox.pop((sender, message.seq), None)
            return
        if isinstance(message, Data):
            env.send(sender, Ack(seq=message.seq))
            seen = self._delivered.setdefault(sender, set())
            if message.seq in seen:
                self.duplicates_dropped += 1
                return
            seen.add(message.seq)
            self.inner.on_message(self._env_for(env), sender, message.inner)
            return
        raise TypeError(f"reliable channel received unexpected {message!r}")

    def on_crash(self, env: Environment) -> None:
        self.inner.on_crash(self._env_for(env))

    def on_stop(self, env: Environment) -> None:
        self.inner.on_stop(self._env_for(env))
