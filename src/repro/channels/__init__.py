"""Fair-lossy links and the reliable-channel stack built over them."""

from repro.channels.lossy import BernoulliLossModel, PeriodicLossModel
from repro.channels.messages import Ack, Data
from repro.channels.reliable import ReliableChannel

__all__ = [
    "Ack",
    "BernoulliLossModel",
    "Data",
    "PeriodicLossModel",
    "ReliableChannel",
]
