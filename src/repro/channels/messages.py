"""Messages of the reliable-channel stack (acknowledged transmission)."""

from __future__ import annotations

import dataclasses

from repro.core.interfaces import Message


@dataclasses.dataclass(frozen=True)
class Data(Message):
    """A payload carried over a fair-lossy link, identified by a per-link sequence
    number so the receiver can acknowledge and de-duplicate it."""

    seq: int
    inner: Message

    @property
    def tag(self) -> str:
        # Expose the inner tag so delay models and statistics treat the carried
        # protocol message (e.g. ALIVE) as what it is; the envelope is transparent.
        return self.inner.tag


@dataclasses.dataclass(frozen=True)
class Ack(Message):
    """Acknowledgement of the :class:`Data` message with the same sequence number."""

    seq: int

    @property
    def tag(self) -> str:
        return "ACK"
