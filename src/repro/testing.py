"""Test doubles for exercising protocol handlers without a full simulation.

:class:`FakeEnvironment` implements :class:`~repro.core.interfaces.Environment`
against in-memory lists: sent messages are recorded, timers are stored and fired
manually, and the clock is advanced explicitly.  It is used extensively by the unit
tests of the algorithm classes and is exported as part of the public API because it
is equally useful to downstream users writing their own protocols on top of
:mod:`repro.core`.

Typical usage::

    env = FakeEnvironment(pid=0, n=3)
    algorithm = Figure3Omega(pid=0, n=3, t=1)
    algorithm.on_start(env)
    env.advance(1.0)
    env.fire_due_timers(algorithm)
    assert env.sent  # ALIVE broadcasts were recorded
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.interfaces import Environment, Message, Process, TimerHandle
from repro.util.rng import RandomSource


@dataclasses.dataclass
class SentMessage:
    """A message recorded by :class:`FakeEnvironment`."""

    time: float
    dest: int
    message: Message


class FakeEnvironment(Environment):
    """In-memory :class:`~repro.core.interfaces.Environment` for unit tests."""

    def __init__(self, pid: int, n: int, seed: int = 0) -> None:
        self._pid = pid
        self._process_ids = tuple(range(n))
        self._now = 0.0
        self._rng = RandomSource(seed, label=f"fake-{pid}")
        #: Every message sent through the environment, in order.
        self.sent: List[SentMessage] = []
        #: Every timer ever set (fired or not), in order.
        self.timers: List[TimerHandle] = []
        #: Trace events recorded through ``log``.
        self.logged: List[Tuple[float, str, Dict[str, Any]]] = []

    # ------------------------------------------------------------------ identity --
    @property
    def pid(self) -> int:
        return self._pid

    @property
    def process_ids(self) -> Sequence[int]:
        return self._process_ids

    @property
    def now(self) -> float:
        return self._now

    @property
    def random(self) -> RandomSource:
        return self._rng

    # ------------------------------------------------------------------ actions --
    def send(self, dest: int, message: Message) -> None:
        self.sent.append(SentMessage(time=self._now, dest=dest, message=message))

    def set_timer(self, delay: float, name: str, payload: Any = None) -> TimerHandle:
        handle = TimerHandle(name=name, fires_at=self._now + delay, payload=payload)
        self.timers.append(handle)
        return handle

    def cancel_timer(self, handle: TimerHandle) -> None:
        handle.cancel()

    def log(self, kind: str, **details: Any) -> None:
        self.logged.append((self._now, kind, details))

    # ------------------------------------------------------------------ test hooks --
    def advance(self, duration: float) -> None:
        """Advance the fake clock by *duration*."""
        if duration < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += duration

    def set_time(self, time: float) -> None:
        """Jump the fake clock to an absolute time (must not go backwards)."""
        if time < self._now:
            raise ValueError("cannot move the clock backwards")
        self._now = time

    def due_timers(self) -> List[TimerHandle]:
        """Return the timers that are due (not cancelled, fires_at <= now)."""
        return [
            timer
            for timer in self.timers
            if not timer.cancelled and timer.fires_at <= self._now
        ]

    def fire_due_timers(self, process: Process) -> int:
        """Fire every due timer on *process*; return how many fired.

        Fired timers are marked cancelled so they only fire once.  Timers armed
        while firing (e.g. the periodic ALIVE timer re-arming itself) are not fired
        in the same call unless they are themselves already due.
        """
        fired = 0
        while True:
            due = self.due_timers()
            if not due:
                return fired
            for timer in due:
                timer.cancel()
                process.on_timer(self, timer)
                fired += 1

    def messages_to(self, dest: int) -> List[Message]:
        """Return the messages sent to *dest*, in order."""
        return [sent.message for sent in self.sent if sent.dest == dest]

    def messages_of_type(self, message_type: type) -> List[Message]:
        """Return the sent messages of the given type, in order."""
        return [sent.message for sent in self.sent if isinstance(sent.message, message_type)]

    def clear_sent(self) -> None:
        """Forget previously recorded messages (keeps timers and the clock)."""
        self.sent.clear()


def deliver_round_alive(
    algorithm: Process,
    env: FakeEnvironment,
    rn: int,
    senders: Sequence[int],
    susp_level: Optional[Dict[int, int]] = None,
) -> None:
    """Deliver ``ALIVE(rn)`` messages from every process in *senders*.

    Convenience helper for unit tests of the Figure 1/2/3 algorithms.
    """
    from repro.core.messages import Alive

    levels = susp_level or {pid: 0 for pid in env.process_ids}
    for sender in senders:
        algorithm.on_message(env, sender, Alive.make(rn, levels))


def deliver_suspicions(
    algorithm: Process,
    env: FakeEnvironment,
    rn: int,
    suspect: int,
    senders: Sequence[int],
) -> None:
    """Deliver ``SUSPICION(rn, {suspect})`` messages from every process in *senders*."""
    from repro.core.messages import Suspicion

    for sender in senders:
        algorithm.on_message(env, sender, Suspicion.make(rn, [suspect]))
