"""Setup shim.

The environment this reproduction is developed in has no network access and no
``wheel`` package, so the PEP-517 editable-install path (which builds a wheel) is
unavailable.  This file lets ``pip install -e . --no-use-pep517`` fall back to the
classic ``setup.py develop`` code path; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
