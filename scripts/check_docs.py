#!/usr/bin/env python
"""Documentation consistency checks (run by the CI ``docs`` job).

Two classes of drift have bitten this repository before: markdown links that
point at files which were later moved, and the README's examples table falling
out of sync with ``examples/*.py``.  This script fails the build on either:

* every *relative* markdown link target in ``README.md`` and ``docs/*.md``
  must exist on disk (http(s) links and pure anchors are not checked — CI
  must not depend on the network);
* every ``examples/*.py`` script must be mentioned in the README's
  "Examples" table, and every script the table mentions must exist;
* the architecture guide's "Static analysis" rule table and the checkers
  registered in ``repro.lint`` must be in bijection — a new rule cannot land
  undocumented, and a documented rule must exist.

Usage::

    python scripts/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
# The docs CI job runs without PYTHONPATH; make repro.lint importable anyway.
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Inline markdown links: [text](target); images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Example scripts referenced anywhere in a document.
_EXAMPLE_REF = re.compile(r"examples/([A-Za-z0-9_]+\.py)")


def check_links(path: Path) -> list:
    """Return 'broken link' error strings for relative link targets in *path*."""
    errors = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    return errors


def _examples_table_rows(text: str) -> list:
    """The markdown table rows of the README's ``## Examples`` section."""
    in_section = False
    rows = []
    for line in text.splitlines():
        if line.startswith("## "):
            in_section = line.strip().lower() == "## examples"
            continue
        if in_section and line.lstrip().startswith("|"):
            rows.append(line)
    return rows


def check_examples_table(readme: Path) -> list:
    """The README examples *table* and the examples/ directory must agree.

    Completeness is checked against the table rows only — a prose mention
    elsewhere in the README must not mask a script missing from the table.
    Phantom references are checked document-wide, so stale prose fails too.
    """
    errors = []
    text = readme.read_text(encoding="utf-8")
    on_disk = {p.name for p in (REPO_ROOT / "examples").glob("*.py")}
    rows = _examples_table_rows(text)
    if not rows:
        return ['README.md: no "## Examples" section with a table found']
    in_table = set()
    for row in rows:
        in_table.update(_EXAMPLE_REF.findall(row))
    for missing in sorted(on_disk - in_table):
        errors.append(
            f"README.md: examples/{missing} exists but is not documented "
            "in the Examples table"
        )
    for phantom in sorted(set(_EXAMPLE_REF.findall(text)) - on_disk):
        errors.append(
            f"README.md: references examples/{phantom}, which does not exist"
        )
    return errors


#: Rule ids in the architecture guide's Static analysis table: `XXX000`.
_RULE_ID = re.compile(r"`([A-Z]{3}\d{3})`")


def _lint_rule_table_ids(architecture: Path) -> set:
    """Rule ids named in the first cell of the Static analysis table rows."""
    in_section = False
    ids = set()
    for line in architecture.read_text(encoding="utf-8").splitlines():
        if line.startswith("## "):
            in_section = line.strip().lower() == "## static analysis"
            continue
        if in_section and line.lstrip().startswith("|"):
            first_cell = line.split("|")[1] if line.count("|") >= 2 else ""
            ids.update(_RULE_ID.findall(first_cell))
    return ids


def check_lint_rule_table(architecture: Path) -> list:
    """The documented rule table and the registered checkers must agree."""
    from repro.lint import RULES

    documented = _lint_rule_table_ids(architecture)
    if not documented:
        return [
            'docs/ARCHITECTURE.md: no "## Static analysis" section with a '
            "rule table found"
        ]
    errors = []
    for missing in sorted(set(RULES) - documented):
        errors.append(
            f"docs/ARCHITECTURE.md: checker {missing} is registered in "
            "repro.lint but missing from the Static analysis rule table"
        )
    for phantom in sorted(documented - set(RULES)):
        errors.append(
            f"docs/ARCHITECTURE.md: rule table documents {phantom}, which is "
            "not a registered checker"
        )
    return errors


def main() -> int:
    documents = [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]
    documents += sorted((REPO_ROOT / "docs").glob("*.md"))
    errors = []
    for document in documents:
        if document.exists():
            errors.extend(check_links(document))
    errors.extend(check_examples_table(REPO_ROOT / "README.md"))
    errors.extend(check_lint_rule_table(REPO_ROOT / "docs" / "ARCHITECTURE.md"))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"\n{len(errors)} documentation problem(s)", file=sys.stderr)
        return 1
    checked = ", ".join(str(d.relative_to(REPO_ROOT)) for d in documents if d.exists())
    print(f"docs OK ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
